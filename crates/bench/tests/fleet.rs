//! End-to-end contract of fleet mode, with the real binaries: a 2-worker
//! loopback fleet at Tiny scale — **with one worker killed mid-slice by
//! fault injection** — must produce merged rows bitwise identical to an
//! unsharded run, and a cold worker must obtain the coordinator's world
//! cache file bitwise over the wire.
//!
//! The choreography is deterministic: worker A starts alone with
//! `FLEET_FAIL_ONCE` armed, pulls the world, leases slice 0, and dies
//! mid-slice (exit 43). Only then does worker B start (clean, separate
//! empty caches): it pulls the world, runs the re-dispatched slice 0 and
//! slice 1, and drains the fleet. Nothing worker A staged may reach disk.

use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use embedstab_bench::{row_merge_key, rows_to_jsonl};
use embedstab_pipeline::cache::scratch_dir;
use embedstab_pipeline::Row;

const TASKS: [&str; 5] = ["sst2", "mr", "subj", "mpqa", "ner"];

/// Kills the coordinator if the test panics before reaping it.
struct Reap(Option<Child>);

impl Drop for Reap {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            child.kill().ok();
            child.wait().ok();
        }
    }
}

#[test]
fn fleet_with_injected_worker_death_matches_unsharded_run_bitwise() {
    let root = scratch_dir("fleet_e2e");
    fs::remove_dir_all(&root).ok();
    let coord_cwd = root.join("coord");
    let world_cache = coord_cwd.join("world-cache");
    let pair_cache = coord_cwd.join("pair-cache");
    fs::create_dir_all(&coord_cwd).expect("coordinator cwd");

    let fig2 = PathBuf::from(env!("CARGO_BIN_EXE_fig2_memory_tradeoff"));
    let bin_dir = fig2.parent().expect("fig2 has a parent dir").to_path_buf();
    let bin_name = fig2
        .file_name()
        .and_then(|n| n.to_str())
        .expect("fig2 has a name");

    // The coordinator builds the world, binds an ephemeral port, and
    // announces it on stderr; tee stderr so the test can find the port
    // and still dump the full log on failure.
    let mut coordinator = Command::new(env!("CARGO_BIN_EXE_fleet_coordinator"))
        .current_dir(&coord_cwd)
        .args(["--shards", "2", "--bind", "127.0.0.1:0"])
        .args(["--bin", bin_name, "--scale", "tiny"])
        .arg("--cache-dir")
        .arg(&pair_cache)
        .arg("--world-cache")
        .arg(&world_cache)
        .args(["--linger-ms", "2000"])
        .stderr(Stdio::piped())
        .spawn()
        .expect("fleet_coordinator spawns");
    let coord_log = Arc::new(Mutex::new(String::new()));
    let tee = {
        let log = coord_log.clone();
        let stderr = coordinator.stderr.take().expect("piped stderr");
        thread::spawn(move || {
            for line in BufReader::new(stderr).lines().map_while(Result::ok) {
                let mut log = log.lock().expect("log lock");
                log.push_str(&line);
                log.push('\n');
            }
        })
    };
    let mut coordinator = Reap(Some(coordinator));
    let addr = wait_for_addr(&coord_log, Duration::from_secs(180));

    // Worker A: cold caches, fault injection armed. It must pull the
    // world, lease a slice, and die mid-slice with status 43.
    let marker = root.join("fail_once.marker");
    let wa = worker_cmd(&root, "worker-a", &bin_dir, &addr)
        .env("FLEET_FAIL_ONCE", &marker)
        .output()
        .expect("worker-a runs");
    let wa_log = String::from_utf8_lossy(&wa.stderr).to_string();
    assert_eq!(
        wa.status.code(),
        Some(43),
        "worker-a must die via fault injection:\n{wa_log}"
    );
    assert!(
        wa_log.contains("injected failure: dying mid-slice"),
        "worker-a must log the injected death:\n{wa_log}"
    );
    assert!(
        wa_log.contains("pulled world cache"),
        "cold worker-a must pull the world over the wire:\n{wa_log}"
    );
    assert!(marker.exists(), "the injection marker must be left behind");

    // Worker B: clean, its own empty caches. It inherits the re-queued
    // slice plus the untouched one and drains the fleet.
    let wb = worker_cmd(&root, "worker-b", &bin_dir, &addr)
        .output()
        .expect("worker-b runs");
    let wb_log = String::from_utf8_lossy(&wb.stderr).to_string();
    assert!(
        wb.status.success(),
        "worker-b must drain the fleet:\n{wb_log}\n--- coordinator:\n{}",
        coord_log.lock().expect("log lock")
    );
    assert!(
        wb_log.contains("pulled world cache"),
        "cold worker-b must pull the world over the wire:\n{wb_log}"
    );
    assert!(
        wb_log.contains("slice 0 complete") && wb_log.contains("slice 1 complete"),
        "worker-b must complete both slices (one re-dispatched):\n{wb_log}"
    );

    let status = coordinator
        .0
        .take()
        .expect("coordinator child")
        .wait()
        .expect("coordinator waits");
    tee.join().expect("tee thread");
    let coord_log = coord_log.lock().expect("log lock").clone();
    assert!(
        status.success(),
        "coordinator must merge and exit 0:\n{coord_log}"
    );
    assert!(
        coord_log.contains("requeued"),
        "worker-a's death must re-queue its slice:\n{coord_log}"
    );
    assert_eq!(
        coord_log.matches("[world]").count(),
        1,
        "the world must be built exactly once, by the coordinator:\n{coord_log}"
    );

    // Cache shipping really shipped the coordinator's file: each worker's
    // local world cache holds a bitwise-identical copy.
    let world_file = single_file(&world_cache);
    let coordinator_world = fs::read(&world_file).expect("coordinator world file");
    for worker in ["worker-a", "worker-b"] {
        let local = root
            .join(worker)
            .join("world-cache")
            .join(world_file.file_name().expect("world file has a name"));
        let pulled = fs::read(&local)
            .unwrap_or_else(|e| panic!("{worker} world copy {} missing: {e}", local.display()));
        assert_eq!(
            pulled, coordinator_world,
            "{worker}'s pulled world file must be bitwise identical"
        );
    }

    // The decisive check: merged rows == an unsharded reference run (same
    // world cache, fresh pairs), bitwise, for every task — the injected
    // death must be invisible in the output.
    let unsharded_cwd = root.join("unsharded");
    fs::create_dir_all(&unsharded_cwd).expect("unsharded cwd");
    let reference = Command::new(&fig2)
        .current_dir(&unsharded_cwd)
        .args(["--scale", "tiny", "--fresh"])
        .arg("--world-cache")
        .arg(&world_cache)
        .output()
        .expect("reference fig2 runs");
    assert!(
        reference.status.success(),
        "unsharded fig2 failed:\n{}",
        String::from_utf8_lossy(&reference.stderr)
    );
    for task in TASKS {
        let merged_path = coord_cwd
            .join("results")
            .join(format!("rows_{task}_tiny.merged.jsonl"));
        let merged = fs::read_to_string(&merged_path)
            .unwrap_or_else(|e| panic!("missing merged rows for {task}: {e}\n{coord_log}"));
        let body = fs::read_to_string(
            unsharded_cwd
                .join("results")
                .join(format!("rows_{task}_tiny.json")),
        )
        .unwrap_or_else(|e| panic!("missing reference rows for {task}: {e}"));
        let mut reference: Vec<Row> = serde_json::from_str(&body).expect("reference rows parse");
        assert!(!reference.is_empty());
        reference.sort_by_cached_key(row_merge_key);
        assert_eq!(
            merged,
            rows_to_jsonl(&reference),
            "merged {task} rows differ from the unsharded run"
        );
    }

    fs::remove_dir_all(&root).ok();
}

/// A worker command with its own workdir and its own **empty** cache
/// directories — every worker starts cold, so cache shipping is on the
/// critical path by construction.
fn worker_cmd(root: &Path, name: &str, bin_dir: &Path, addr: &str) -> Command {
    let home = root.join(name);
    fs::create_dir_all(&home).expect("worker home");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fleet_worker"));
    cmd.current_dir(&home)
        .args(["--addr", addr, "--name", name])
        .arg("--bin-dir")
        .arg(bin_dir)
        .arg("--cache-dir")
        .arg(home.join("pair-cache"))
        .arg("--world-cache")
        .arg(home.join("world-cache"))
        .args(["--heartbeat-ms", "500", "--poll-ms", "25"])
        .args(["--connect-retries", "20"]);
    cmd
}

/// Polls the coordinator's teed stderr for the "serving ... on ADDR"
/// announcement and returns the address.
fn wait_for_addr(log: &Arc<Mutex<String>>, timeout: Duration) -> String {
    let start = Instant::now();
    loop {
        {
            let log = log.lock().expect("log lock");
            if let Some(line) = log.lines().find(|l| l.contains("] serving ")) {
                let addr = line.rsplit(" on ").next().expect("rsplit yields").trim();
                return addr.to_string();
            }
        }
        assert!(
            start.elapsed() < timeout,
            "coordinator never announced its address:\n{}",
            log.lock().expect("log lock")
        );
        thread::sleep(Duration::from_millis(50));
    }
}

/// The single file expected in a directory (the Tiny world cache).
fn single_file(dir: &Path) -> PathBuf {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    assert_eq!(files.len(), 1, "expected exactly one file in {dir:?}");
    files.pop().expect("one file")
}
