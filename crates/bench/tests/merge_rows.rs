//! Shard fan-in: merging the per-shard JSONL row files must reproduce the
//! unsharded run exactly — bitwise, after canonical ordering — and be
//! idempotent under duplicate inputs.

use embedstab_bench::{merge_shard_rows, row_merge_key, rows_to_jsonl};
use embedstab_pipeline::cache::scratch_dir;
use embedstab_pipeline::{Experiment, JsonlSink, Scale, World};
use embedstab_quant::Precision;

#[test]
fn merged_shards_equal_the_unsharded_run_bitwise() {
    let mut params = Scale::Tiny.params();
    params.dims = vec![4, 8];
    params.precisions = vec![Precision::new(1), Precision::FULL];
    params.seeds = vec![0, 1];
    let world = World::build(&params, 0);
    let experiment = || {
        Experiment::new(&world)
            .tasks(["sst2"])
            .algos([embedstab_embeddings::Algo::Mc])
    };

    let dir = scratch_dir("merge_rows_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // The unsharded reference, in canonical order.
    let mut reference = experiment().run();
    assert_eq!(reference.len(), 8);
    reference.sort_by_key(row_merge_key);

    // Three shard processes streaming to their own JSONL files (completion
    // order, so the files themselves are unordered).
    let n = 3;
    let shard_paths: Vec<_> = (0..n)
        .map(|i| dir.join(format!("rows_sst2_tiny.shard{i}of{n}.jsonl")))
        .collect();
    for (i, path) in shard_paths.iter().enumerate() {
        experiment().shard(i, n).sink(JsonlSink::new(path)).run();
    }

    let merged = merge_shard_rows(&shard_paths).expect("merge");
    assert_eq!(
        rows_to_jsonl(&merged),
        rows_to_jsonl(&reference),
        "merged shards must equal the unsharded run bitwise"
    );

    // Duplicated inputs (a shard merged twice, or a re-run) de-duplicate
    // to the same canonical output.
    let mut doubled = shard_paths.clone();
    doubled.extend(shard_paths.iter().cloned());
    let deduped = merge_shard_rows(&doubled).expect("merge with duplicates");
    assert_eq!(rows_to_jsonl(&deduped), rows_to_jsonl(&reference));

    // And merging the merged output is a no-op (idempotent fan-in).
    let merged_path = dir.join("merged.jsonl");
    std::fs::write(&merged_path, rows_to_jsonl(&merged)).expect("write merged");
    let remerged = merge_shard_rows([&merged_path]).expect("re-merge");
    assert_eq!(rows_to_jsonl(&remerged), rows_to_jsonl(&reference));

    std::fs::remove_dir_all(&dir).ok();
}
