//! Shard fan-in: merging the per-shard JSONL row files must reproduce the
//! unsharded run exactly — bitwise, after canonical ordering — and be
//! idempotent under duplicate inputs.

use embedstab_bench::{
    check_shard_set, merge_shard_rows, merge_shard_rows_partial, parse_shard_suffix, row_merge_key,
    rows_to_jsonl,
};
use embedstab_pipeline::cache::scratch_dir;
use embedstab_pipeline::{Experiment, JsonlSink, Scale, World};
use embedstab_quant::Precision;

#[test]
fn merged_shards_equal_the_unsharded_run_bitwise() {
    let mut params = Scale::Tiny.params();
    params.dims = vec![4, 8];
    params.precisions = vec![Precision::new(1), Precision::FULL];
    params.seeds = vec![0, 1];
    let world = World::build(&params, 0);
    let experiment = || {
        Experiment::new(&world)
            .tasks(["sst2"])
            .algos([embedstab_embeddings::Algo::Mc])
    };

    let dir = scratch_dir("merge_rows_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // The unsharded reference, in canonical order.
    let mut reference = experiment().run();
    assert_eq!(reference.len(), 8);
    reference.sort_by_key(row_merge_key);

    // Three shard processes streaming to their own JSONL files (completion
    // order, so the files themselves are unordered).
    let n = 3;
    let shard_paths: Vec<_> = (0..n)
        .map(|i| dir.join(format!("rows_sst2_tiny.shard{i}of{n}.jsonl")))
        .collect();
    for (i, path) in shard_paths.iter().enumerate() {
        experiment().shard(i, n).sink(JsonlSink::new(path)).run();
    }

    let merged = merge_shard_rows(&shard_paths).expect("merge");
    assert_eq!(
        rows_to_jsonl(&merged),
        rows_to_jsonl(&reference),
        "merged shards must equal the unsharded run bitwise"
    );

    // Duplicated inputs (a shard merged twice, or a re-run) de-duplicate
    // to the same canonical output.
    let mut doubled = shard_paths.clone();
    doubled.extend(shard_paths.iter().cloned());
    let deduped = merge_shard_rows(&doubled).expect("merge with duplicates");
    assert_eq!(rows_to_jsonl(&deduped), rows_to_jsonl(&reference));

    // And merging the merged output is a no-op (idempotent fan-in).
    let merged_path = dir.join("merged.jsonl");
    std::fs::write(&merged_path, rows_to_jsonl(&merged)).expect("write merged");
    let remerged = merge_shard_rows(&[&merged_path]).expect("re-merge");
    assert_eq!(rows_to_jsonl(&remerged), rows_to_jsonl(&reference));

    // An incomplete shard set must be an error, not a silently smaller
    // "canonical" file; --partial (the _partial variant) overrides.
    let incomplete = &shard_paths[..2];
    let err = merge_shard_rows(incomplete).expect_err("gap must error");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(
        err.to_string().contains("shard2of3"),
        "names the gap: {err}"
    );
    let salvaged = merge_shard_rows_partial(incomplete).expect("partial merge");
    assert!(salvaged.len() < reference.len());
    assert!(!salvaged.is_empty());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_suffix_parsing_and_set_checking() {
    let p = |s: &str| std::path::PathBuf::from(s);
    assert_eq!(
        parse_shard_suffix(&p("results/rows_sst2_small.shard0of2.jsonl")),
        Some(("rows_sst2_small".to_string(), 0, 2))
    );
    // Non-shard files, malformed and out-of-range suffixes are not shards.
    assert_eq!(parse_shard_suffix(&p("results/rows.merged.jsonl")), None);
    assert_eq!(parse_shard_suffix(&p("rows.shard2of2.jsonl")), None);
    assert_eq!(parse_shard_suffix(&p("rows.shard0of0.jsonl")), None);
    assert_eq!(parse_shard_suffix(&p("rows.shardXofY.jsonl")), None);
    assert_eq!(parse_shard_suffix(&p("rows.shard1of2.json")), None);

    // Complete set, duplicates, and plain (non-shard) inputs all pass.
    check_shard_set(&[
        p("a.shard0of2.jsonl"),
        p("a.shard1of2.jsonl"),
        p("a.shard1of2.jsonl"),
        p("merged.jsonl"),
    ])
    .expect("complete set");
    // Independent stems are validated independently.
    check_shard_set(&[
        p("a.shard0of1.jsonl"),
        p("b.shard0of2.jsonl"),
        p("b.shard1of2.jsonl"),
    ])
    .expect("two complete stems");
    // A gap in either stem fails, naming the stem.
    let err =
        check_shard_set(&[p("a.shard0of1.jsonl"), p("b.shard0of2.jsonl")]).expect_err("gap in b");
    assert!(err.to_string().contains('b'), "{err}");
    assert!(err.to_string().contains("shard1of2"), "{err}");
    // Mixed shard counts for one stem fail even if each looks complete.
    let err = check_shard_set(&[
        p("a.shard0of1.jsonl"),
        p("a.shard0of2.jsonl"),
        p("a.shard1of2.jsonl"),
    ])
    .expect_err("mixed n");
    assert!(err.to_string().contains("mixed"), "{err}");
}
