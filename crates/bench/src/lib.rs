//! Shared analysis helpers for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper (see
//! DESIGN.md section 4 for the full index). The helpers here aggregate
//! per-seed rows, convert them into the selection-evaluation inputs of
//! `embedstab-core`, and compute the per-(task, algorithm) Spearman
//! tables.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use embedstab_core::measures::MeasureKind;
use embedstab_core::selection::ConfigPoint;
use embedstab_core::stats;
use embedstab_pipeline::{
    EmbeddingGrid, Experiment, JsonlSink, PairCache, ProgressSink, Row, Scale, World,
};

/// A built experiment context: world plus trained embedding grid.
///
/// (Formerly named `Experiment`; that name now belongs to the pipeline's
/// [`Experiment`] builder, which the binaries run grids through.)
pub struct Setup {
    /// The corpus pair and datasets.
    pub world: World,
    /// The trained full-precision embedding pairs.
    pub grid: EmbeddingGrid,
}

/// Builds a world and trains the grid for the given algorithms at the
/// given scale (master seed 0, shared by all binaries so grids agree).
pub fn setup(scale: Scale, algos: &[embedstab_embeddings::Algo]) -> Setup {
    setup_cached(scale, algos, None)
}

/// Like [`setup`], but loads/stores trained pairs through an on-disk
/// [`PairCache`] when a directory is given (the `--cache-dir` flag).
pub fn setup_cached(
    scale: Scale,
    algos: &[embedstab_embeddings::Algo],
    cache_dir: Option<&Path>,
) -> Setup {
    let world = world_from_args(scale);
    let params = &world.params;
    let cache = cache_dir.map(|dir| {
        PairCache::open(dir, world.fingerprint())
            .unwrap_or_else(|e| panic!("cannot open cache dir {}: {e}", dir.display()))
    });
    let grid =
        EmbeddingGrid::build_cached(&world, algos, &params.dims, &params.seeds, cache.as_ref());
    Setup { world, grid }
}

/// Builds the world for a scale (master seed 0), honoring the
/// `--world-cache <path>` flag: when present, the world is loaded from
/// (or built once into) the on-disk world cache — how the `coordinator`'s
/// shard subprocesses skip the rebuild that used to dominate sharded runs.
pub fn world_from_args(scale: Scale) -> World {
    let params = scale.params();
    match world_cache_from_args() {
        Some(dir) => World::load_or_build(&params, 0, &dir)
            .unwrap_or_else(|e| panic!("cannot open world cache {}: {e}", dir.display())),
        None => World::build(&params, 0),
    }
}

/// Parses `--shard i/n` from the process arguments.
///
/// # Panics
///
/// Panics with a usage message on a malformed value.
pub fn shard_from_args() -> Option<(usize, usize)> {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--shard" {
            let val = args.get(i + 1).map(String::as_str).unwrap_or("");
            let parsed = val.split_once('/').and_then(|(a, b)| {
                let i = a.parse::<usize>().ok()?;
                let n = b.parse::<usize>().ok()?;
                (n > 0 && i < n).then_some((i, n))
            });
            return Some(parsed.unwrap_or_else(|| {
                panic!("bad --shard '{val}'; use i/n with 0 <= i < n, e.g. --shard 0/2")
            }));
        }
    }
    None
}

/// Parses `--cache-dir path` from the process arguments.
pub fn cache_dir_from_args() -> Option<PathBuf> {
    path_flag_from_args("--cache-dir")
}

/// Parses `--world-cache path` from the process arguments.
pub fn world_cache_from_args() -> Option<PathBuf> {
    path_flag_from_args("--world-cache")
}

fn path_flag_from_args(flag: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == flag {
            let val = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a path"));
            return Some(PathBuf::from(val));
        }
    }
    None
}

/// The canonical ordering key for merged rows: one entry per grid
/// configuration, so a sorted run has exactly one row per key.
pub fn row_merge_key(r: &Row) -> (String, String, usize, u8, u64) {
    (r.task.clone(), r.algo.clone(), r.dim, r.bits, r.seed)
}

/// Parses the shard suffix out of a shard row file name
/// (`<stem>.shard<i>of<n>.jsonl`), returning `(stem, i, n)`. Returns
/// `None` for non-shard files (e.g. an already-merged output), malformed
/// suffixes, and out-of-range indices (`i >= n` or `n == 0`).
pub fn parse_shard_suffix(path: &Path) -> Option<(String, usize, usize)> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_suffix(".jsonl")?;
    let (stem, shard) = rest.rsplit_once(".shard")?;
    let (i, n) = shard.split_once("of")?;
    let (i, n) = (i.parse::<usize>().ok()?, n.parse::<usize>().ok()?);
    (n > 0 && i < n).then(|| (stem.to_string(), i, n))
}

/// Checks that the shard files among `paths` form complete sets: for every
/// stem, all files agree on the shard count `n` and shards `0..n` are all
/// present. Duplicates are fine (the merge de-duplicates); files without a
/// `shard<i>of<n>` suffix are fine too (merged outputs re-merge as-is).
///
/// This is what keeps a partial fan-in from masquerading as a canonical
/// row file: merging `shard0of2` without `shard1of2` would *silently*
/// produce a file that claims to cover the grid but is missing half the
/// configurations.
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::InvalidInput`] naming the stem and the
/// missing shards (or the conflicting counts) on an incomplete or mixed
/// set.
pub fn check_shard_set<P: AsRef<Path>>(paths: &[P]) -> std::io::Result<()> {
    let mut groups: BTreeMap<String, (usize, Vec<bool>)> = BTreeMap::new();
    for path in paths {
        let Some((stem, i, n)) = parse_shard_suffix(path.as_ref()) else {
            continue;
        };
        let (first_n, seen) = groups.entry(stem.clone()).or_insert((n, vec![false; n]));
        if *first_n != n {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "mixed shard counts for '{stem}': both of{first_n} and of{n} \
                     (merge one fleet at a time, or pass --partial to override)"
                ),
            ));
        }
        seen[i] = true;
    }
    for (stem, (n, seen)) in &groups {
        let missing: Vec<String> = seen
            .iter()
            .enumerate()
            .filter(|(_, &s)| !s)
            .map(|(i, _)| format!("shard{i}of{n}"))
            .collect();
        if !missing.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "incomplete shard set for '{stem}': missing {} \
                     (pass --partial to merge anyway)",
                    missing.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

/// Merges sharded row files (`rows_<task>_<scale>.shard<i>of<n>.jsonl`)
/// into one canonical row list: the concatenation sorted by
/// [`row_merge_key`] and de-duplicated by that key (first occurrence, in
/// input order, wins — re-merging an already-merged file is a no-op).
///
/// The shard set is validated first ([`check_shard_set`]): a gap or a
/// mixed shard count is an error, because the output would wrongly claim
/// to be the canonical full-grid row file. Use
/// [`merge_shard_rows_partial`] to deliberately merge an incomplete set.
///
/// Because shards partition the configuration enumeration disjointly and
/// the pair cache round-trips bitwise, the merge of a full shard set
/// equals the unsharded run's rows exactly — bitwise, not just
/// approximately (the `merge_rows` integration test pins this).
///
/// # Errors
///
/// Returns any I/O error from reading a shard file, or
/// [`std::io::ErrorKind::InvalidInput`] for an incomplete/mixed shard set.
pub fn merge_shard_rows<P: AsRef<Path>>(paths: &[P]) -> std::io::Result<Vec<Row>> {
    check_shard_set(paths)?;
    merge_shard_rows_partial(paths)
}

/// [`merge_shard_rows`] without the completeness check — the `--partial`
/// escape hatch for salvaging rows from a fleet with dead shards. The
/// output is *not* canonical: configurations covered by the missing
/// shards are absent.
pub fn merge_shard_rows_partial<P: AsRef<Path>>(paths: &[P]) -> std::io::Result<Vec<Row>> {
    let mut rows = Vec::new();
    for path in paths {
        rows.extend(JsonlSink::load(path)?);
    }
    // Stable sort + consecutive dedup: the first occurrence per key in
    // input order survives.
    rows.sort_by_cached_key(row_merge_key);
    rows.dedup_by(|a, b| row_merge_key(a) == row_merge_key(b));
    Ok(rows)
}

/// Resolves a shard/worker binary: an explicit path (anything with a
/// separator) is used as-is; a bare name is looked up next to the current
/// executable (all the bench binaries live in the same cargo target
/// directory).
///
/// # Panics
///
/// Panics with a build-it-first message when a bare name has no sibling —
/// this is a binary-side helper, not a library-call path.
pub fn resolve_bin(name: &str) -> PathBuf {
    let path = Path::new(name);
    if path.components().count() > 1 {
        return path.to_path_buf();
    }
    let exe = std::env::current_exe().expect("binary knows its own path");
    let sibling = exe.with_file_name(name);
    if !sibling.exists() {
        panic!(
            "binary {} not found next to {}; build it first or pass a full path",
            sibling.display(),
            exe.display()
        );
    }
    sibling
}

/// Removes leftover shard row files with shard count `n` from
/// `results_dir`: they are regenerable intermediates, and a stale one
/// from an aborted earlier fleet would otherwise be merged as if the new
/// fleet had produced it.
pub fn clean_stale_shard_rows(results_dir: &Path, n: usize) {
    let Ok(entries) = std::fs::read_dir(results_dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if let Some((_, _, file_n)) = parse_shard_suffix(&path) {
            if file_n == n {
                std::fs::remove_file(&path).ok();
            }
        }
    }
}

/// Fans a fleet's shard row files back in: groups every
/// `<stem>.shard<i>of<n>.jsonl` in `results_dir` with `n == shards` by
/// stem, merges each complete group through the validated
/// [`merge_shard_rows`] path, and writes `<stem>.merged.jsonl` next to
/// them (atomically). Returns `(stem, merged path, row count)` per group,
/// sorted by stem; an empty result means the fleet wrote no row files.
///
/// # Errors
///
/// Any error from reading the directory, an incomplete/mixed shard set
/// ([`check_shard_set`]), or writing a merged file.
pub fn merge_fleet_results(
    results_dir: &Path,
    shards: usize,
) -> std::io::Result<Vec<(String, PathBuf, usize)>> {
    let mut groups: BTreeMap<String, Vec<PathBuf>> = BTreeMap::new();
    for entry in std::fs::read_dir(results_dir)?.flatten() {
        let path = entry.path();
        if let Some((stem, _, n)) = parse_shard_suffix(&path) {
            if n == shards {
                groups.entry(stem).or_default().push(path);
            }
        }
    }
    let mut merged = Vec::new();
    for (stem, mut group) in groups {
        group.sort();
        let rows = merge_shard_rows(&group)?;
        let out = results_dir.join(format!("{stem}.merged.jsonl"));
        embedstab_pipeline::cache::atomic_write(&out, rows_to_jsonl(&rows).as_bytes())?;
        merged.push((stem, out, rows.len()));
    }
    Ok(merged)
}

/// Serializes merged rows back to JSONL (one row per line, trailing
/// newline), the same line format [`JsonlSink`] writes.
pub fn rows_to_jsonl(rows: &[Row]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&serde_json::to_string(r).expect("row serializes"));
        out.push('\n');
    }
    out
}

/// A row aggregated over seeds for one `(task, algo, dim, bits)`.
#[derive(Clone, Debug)]
pub struct AggRow {
    /// Task name.
    pub task: String,
    /// Algorithm name.
    pub algo: String,
    /// Dimension.
    pub dim: usize,
    /// Precision bits.
    pub bits: u8,
    /// Bits/word.
    pub memory: u64,
    /// Mean disagreement over seeds, in `[0, 1]`.
    pub mean_di: f64,
    /// Standard deviation of disagreement over seeds.
    pub std_di: f64,
    /// Mean '17-side quality over seeds.
    pub mean_quality: f64,
    /// Number of seeds aggregated.
    pub n_seeds: usize,
}

/// Aggregates raw rows over seeds, keyed by `(task, algo, dim, bits)` and
/// sorted by `(task, algo, memory, bits)`.
pub fn aggregate(rows: &[Row]) -> Vec<AggRow> {
    let mut groups: BTreeMap<(String, String, usize, u8), Vec<&Row>> = BTreeMap::new();
    for r in rows {
        groups
            .entry((r.task.clone(), r.algo.clone(), r.dim, r.bits))
            .or_default()
            .push(r);
    }
    let mut out: Vec<AggRow> = groups
        .into_iter()
        .map(|((task, algo, dim, bits), rs)| {
            let dis: Vec<f64> = rs.iter().map(|r| r.disagreement).collect();
            let qs: Vec<f64> = rs.iter().map(|r| r.quality17).collect();
            AggRow {
                task,
                algo,
                dim,
                bits,
                memory: rs[0].memory,
                mean_di: stats::mean(&dis),
                std_di: stats::std_dev(&dis),
                mean_quality: stats::mean(&qs),
                n_seeds: rs.len(),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        (&a.task, &a.algo, a.memory, a.bits).cmp(&(&b.task, &b.algo, b.memory, b.bits))
    });
    out
}

/// Spearman correlation between one measure and disagreement over all rows
/// (the paper computes this per task and algorithm across the
/// dimension-precision grid).
///
/// Returns `None` if any row lacks measures or there are fewer than 3 rows.
pub fn spearman_for(rows: &[Row], kind: MeasureKind) -> Option<f64> {
    if rows.len() < 3 {
        return None;
    }
    let mut xs = Vec::with_capacity(rows.len());
    let mut ys = Vec::with_capacity(rows.len());
    for r in rows {
        xs.push(r.measures?.get(kind));
        ys.push(r.disagreement);
    }
    Some(stats::spearman(&xs, &ys))
}

/// Splits rows by seed and converts each seed's grid into selection
/// inputs for one measure — the paper evaluates selection per seed and
/// averages (Section 5.2).
///
/// Rows without measures are skipped.
pub fn config_points_per_seed(rows: &[Row], kind: MeasureKind) -> Vec<Vec<ConfigPoint>> {
    let mut by_seed: BTreeMap<u64, Vec<ConfigPoint>> = BTreeMap::new();
    for r in rows {
        let Some(m) = r.measures else { continue };
        by_seed.entry(r.seed).or_default().push(ConfigPoint {
            dim: r.dim,
            bits: r.bits,
            measure: m.get(kind),
            instability: r.disagreement,
        });
    }
    by_seed.into_values().collect()
}

/// Filters rows to one algorithm.
pub fn rows_for_algo(rows: &[Row], algo: &str) -> Vec<Row> {
    rows.iter().filter(|r| r.algo == algo).cloned().collect()
}

/// Loads cached rows from `results/<name>.json`, or computes and caches
/// them. Several tables share the same (expensive) grid rows; the first
/// binary to run pays, the rest reuse. Pass `--fresh` to any binary to
/// bypass the cache.
pub fn rows_cached(name: &str, compute: impl FnOnce() -> Vec<Row>) -> Vec<Row> {
    let fresh = std::env::args().any(|a| a == "--fresh");
    let path = std::path::Path::new("results").join(format!("{name}.json"));
    if !fresh {
        if let Ok(body) = std::fs::read_to_string(&path) {
            if let Ok(rows) = serde_json::from_str::<Vec<Row>>(&body) {
                eprintln!("[cache] loaded {} rows from {}", rows.len(), path.display());
                return rows;
            }
        }
    }
    let rows = compute();
    if let Err(e) = embedstab_pipeline::report::save_json(name, &rows) {
        eprintln!("[cache] warning: could not save {name}: {e}");
    }
    rows
}

/// The scale name as a cache-key suffix.
pub fn scale_tag(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// Copies measure values from `with` onto `rows` by matching
/// `(algo, dim, bits, seed)` — measures depend only on the embedding pair,
/// not on the downstream task, so one task's grid can supply them all.
pub fn attach_measures(rows: &mut [Row], with: &[Row]) {
    let map: BTreeMap<(String, usize, u8, u64), embedstab_core::MeasureValues> = with
        .iter()
        .filter_map(|r| {
            r.measures
                .map(|m| ((r.algo.clone(), r.dim, r.bits, r.seed), m))
        })
        .collect();
    for r in rows.iter_mut() {
        if r.measures.is_none() {
            r.measures = map.get(&(r.algo.clone(), r.dim, r.bits, r.seed)).copied();
        }
    }
}

/// Computes (or loads) the standard full-grid rows for the given tasks
/// over the three main algorithms. Measures are computed once — during the
/// first task's grid — and attached to the rest, since they only depend on
/// the embedding pair.
///
/// Row caches live under `results/rows_<task>_<scale>.json`.
///
/// Three process flags feed straight into the pipeline:
/// `--cache-dir <path>` shares trained embedding pairs on disk,
/// `--world-cache <path>` loads (or builds once) the world itself from an
/// on-disk [`WorldCache`](embedstab_pipeline::WorldCache), and
/// `--shard i/n` makes this process cover only its slice of each task's
/// grid (rows then stream to
/// `results/rows_<task>_<scale>.shard<i>of<n>.jsonl` instead of the shared
/// JSON row cache, so partial results never poison it).
pub fn standard_rows(scale: Scale, tasks: &[&str]) -> BTreeMap<String, Vec<Row>> {
    let tag = scale_tag(scale);
    let cache_dir = cache_dir_from_args();
    if let Some((index, n)) = shard_from_args() {
        // Sharded: no pre-built grid — each task's Experiment trains (or
        // cache-loads) exactly the pairs its shard touches. Sharding
        // without a shared cache would retrain pairs per task, so default
        // the cache on.
        let cache = cache_dir.unwrap_or_else(|| PathBuf::from("cache"));
        let world = world_from_args(scale);
        let mut out: BTreeMap<String, Vec<Row>> = BTreeMap::new();
        let mut measure_source: Option<Vec<Row>> = None;
        for (i, &task) in tasks.iter().enumerate() {
            let first = i == 0;
            let jsonl = format!("results/rows_{task}_{tag}.shard{index}of{n}.jsonl");
            std::fs::remove_file(&jsonl).ok(); // append sink: start clean
            eprintln!(
                "[run] {task} grid, shard {index}/{n} (cache {})...",
                cache.display()
            );
            let mut rows = Experiment::new(&world)
                .tasks([task])
                .with_measures(first)
                .shard(index, n)
                .cache_dir(&cache)
                .sink(JsonlSink::new(&jsonl))
                .sink(ProgressSink::new(format!("{task}/{tag} {index}/{n}"), 8))
                .run();
            if first {
                measure_source = Some(rows.clone());
            } else if let Some(src) = &measure_source {
                attach_measures(&mut rows, src);
            }
            out.insert(task.to_string(), rows);
        }
        return out;
    }
    let mut exp: Option<Setup> = None;
    let mut out: BTreeMap<String, Vec<Row>> = BTreeMap::new();
    let mut measure_source: Option<Vec<Row>> = None;
    for (i, &task) in tasks.iter().enumerate() {
        let name = format!("rows_{task}_{tag}");
        let first = i == 0;
        let rows = {
            let exp_ref = &mut exp;
            let cache_dir = cache_dir.as_deref();
            rows_cached(&name, || {
                let e = exp_ref.get_or_insert_with(|| {
                    eprintln!("[setup] building world + embedding grid ({tag})...");
                    setup_cached(scale, &embedstab_embeddings::Algo::MAIN, cache_dir)
                });
                eprintln!("[run] {task} grid...");
                Experiment::new(&e.world)
                    .grid(&e.grid)
                    .tasks([task])
                    .with_measures(first)
                    .run()
            })
        };
        let mut rows = rows;
        if first {
            measure_source = Some(rows.clone());
        } else if let Some(src) = &measure_source {
            attach_measures(&mut rows, src);
        }
        out.insert(task.to_string(), rows);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_core::MeasureValues;

    fn row(task: &str, algo: &str, dim: usize, bits: u8, seed: u64, di: f64) -> Row {
        Row {
            task: task.into(),
            algo: algo.into(),
            dim,
            bits,
            memory: dim as u64 * bits as u64,
            seed,
            disagreement: di,
            quality17: 0.8,
            quality18: 0.8,
            measures: Some(MeasureValues {
                eis: di * 0.9,
                knn_dist: di * 1.1,
                semantic_displacement: 0.5,
                pip_loss: 1.0,
                overlap_dist: 0.5,
            }),
        }
    }

    #[test]
    fn aggregate_means_and_stds() {
        let rows = vec![
            row("sst2", "MC", 8, 4, 0, 0.10),
            row("sst2", "MC", 8, 4, 1, 0.20),
            row("sst2", "MC", 16, 4, 0, 0.05),
        ];
        let agg = aggregate(&rows);
        assert_eq!(agg.len(), 2);
        let g = agg.iter().find(|a| a.dim == 8).expect("group");
        assert!((g.mean_di - 0.15).abs() < 1e-12);
        assert_eq!(g.n_seeds, 2);
    }

    #[test]
    fn spearman_uses_requested_measure() {
        // EIS tracks DI perfectly (rank-wise) in the fixture.
        let rows: Vec<Row> = (0..6)
            .map(|i| row("sst2", "MC", 4 << i, 32, 0, 0.02 * (6 - i) as f64))
            .collect();
        let rho = spearman_for(&rows, MeasureKind::Eis).expect("measures present");
        assert!((rho - 1.0).abs() < 1e-9);
    }

    #[test]
    fn config_points_split_by_seed() {
        let rows = vec![
            row("sst2", "MC", 8, 4, 0, 0.1),
            row("sst2", "MC", 8, 8, 0, 0.05),
            row("sst2", "MC", 8, 4, 1, 0.2),
        ];
        let per_seed = config_points_per_seed(&rows, MeasureKind::Knn);
        assert_eq!(per_seed.len(), 2);
        assert_eq!(per_seed[0].len(), 2);
        assert_eq!(per_seed[1].len(), 1);
    }
}
