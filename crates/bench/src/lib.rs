//! Shared analysis helpers for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper (see
//! DESIGN.md section 4 for the full index). The helpers here aggregate
//! per-seed rows, convert them into the selection-evaluation inputs of
//! `embedstab-core`, and compute the per-(task, algorithm) Spearman
//! tables.

use std::collections::BTreeMap;

use embedstab_core::measures::MeasureKind;
use embedstab_core::selection::ConfigPoint;
use embedstab_core::stats;
use embedstab_pipeline::{EmbeddingGrid, Row, Scale, World};

/// A built experiment context: world plus trained embedding grid.
pub struct Experiment {
    /// The corpus pair and datasets.
    pub world: World,
    /// The trained full-precision embedding pairs.
    pub grid: EmbeddingGrid,
}

/// Builds a world and trains the grid for the given algorithms at the
/// given scale (master seed 0, shared by all binaries so grids agree).
pub fn setup(scale: Scale, algos: &[embedstab_embeddings::Algo]) -> Experiment {
    let params = scale.params();
    let world = World::build(&params, 0);
    let dims = params.dims.clone();
    let seeds = params.seeds.clone();
    let grid = EmbeddingGrid::build(&world, algos, &dims, &seeds);
    Experiment { world, grid }
}

/// A row aggregated over seeds for one `(task, algo, dim, bits)`.
#[derive(Clone, Debug)]
pub struct AggRow {
    /// Task name.
    pub task: String,
    /// Algorithm name.
    pub algo: String,
    /// Dimension.
    pub dim: usize,
    /// Precision bits.
    pub bits: u8,
    /// Bits/word.
    pub memory: u64,
    /// Mean disagreement over seeds, in `[0, 1]`.
    pub mean_di: f64,
    /// Standard deviation of disagreement over seeds.
    pub std_di: f64,
    /// Mean '17-side quality over seeds.
    pub mean_quality: f64,
    /// Number of seeds aggregated.
    pub n_seeds: usize,
}

/// Aggregates raw rows over seeds, keyed by `(task, algo, dim, bits)` and
/// sorted by `(task, algo, memory, bits)`.
pub fn aggregate(rows: &[Row]) -> Vec<AggRow> {
    let mut groups: BTreeMap<(String, String, usize, u8), Vec<&Row>> = BTreeMap::new();
    for r in rows {
        groups
            .entry((r.task.clone(), r.algo.clone(), r.dim, r.bits))
            .or_default()
            .push(r);
    }
    let mut out: Vec<AggRow> = groups
        .into_iter()
        .map(|((task, algo, dim, bits), rs)| {
            let dis: Vec<f64> = rs.iter().map(|r| r.disagreement).collect();
            let qs: Vec<f64> = rs.iter().map(|r| r.quality17).collect();
            AggRow {
                task,
                algo,
                dim,
                bits,
                memory: rs[0].memory,
                mean_di: stats::mean(&dis),
                std_di: stats::std_dev(&dis),
                mean_quality: stats::mean(&qs),
                n_seeds: rs.len(),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        (&a.task, &a.algo, a.memory, a.bits).cmp(&(&b.task, &b.algo, b.memory, b.bits))
    });
    out
}

/// Spearman correlation between one measure and disagreement over all rows
/// (the paper computes this per task and algorithm across the
/// dimension-precision grid).
///
/// Returns `None` if any row lacks measures or there are fewer than 3 rows.
pub fn spearman_for(rows: &[Row], kind: MeasureKind) -> Option<f64> {
    if rows.len() < 3 {
        return None;
    }
    let mut xs = Vec::with_capacity(rows.len());
    let mut ys = Vec::with_capacity(rows.len());
    for r in rows {
        xs.push(r.measures?.get(kind));
        ys.push(r.disagreement);
    }
    Some(stats::spearman(&xs, &ys))
}

/// Splits rows by seed and converts each seed's grid into selection
/// inputs for one measure — the paper evaluates selection per seed and
/// averages (Section 5.2).
///
/// Rows without measures are skipped.
pub fn config_points_per_seed(rows: &[Row], kind: MeasureKind) -> Vec<Vec<ConfigPoint>> {
    let mut by_seed: BTreeMap<u64, Vec<ConfigPoint>> = BTreeMap::new();
    for r in rows {
        let Some(m) = r.measures else { continue };
        by_seed.entry(r.seed).or_default().push(ConfigPoint {
            dim: r.dim,
            bits: r.bits,
            measure: m.get(kind),
            instability: r.disagreement,
        });
    }
    by_seed.into_values().collect()
}

/// Filters rows to one algorithm.
pub fn rows_for_algo(rows: &[Row], algo: &str) -> Vec<Row> {
    rows.iter().filter(|r| r.algo == algo).cloned().collect()
}

/// Loads cached rows from `results/<name>.json`, or computes and caches
/// them. Several tables share the same (expensive) grid rows; the first
/// binary to run pays, the rest reuse. Pass `--fresh` to any binary to
/// bypass the cache.
pub fn rows_cached(name: &str, compute: impl FnOnce() -> Vec<Row>) -> Vec<Row> {
    let fresh = std::env::args().any(|a| a == "--fresh");
    let path = std::path::Path::new("results").join(format!("{name}.json"));
    if !fresh {
        if let Ok(body) = std::fs::read_to_string(&path) {
            if let Ok(rows) = serde_json::from_str::<Vec<Row>>(&body) {
                eprintln!("[cache] loaded {} rows from {}", rows.len(), path.display());
                return rows;
            }
        }
    }
    let rows = compute();
    if let Err(e) = embedstab_pipeline::report::save_json(name, &rows) {
        eprintln!("[cache] warning: could not save {name}: {e}");
    }
    rows
}

/// The scale name as a cache-key suffix.
pub fn scale_tag(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// Copies measure values from `with` onto `rows` by matching
/// `(algo, dim, bits, seed)` — measures depend only on the embedding pair,
/// not on the downstream task, so one task's grid can supply them all.
pub fn attach_measures(rows: &mut [Row], with: &[Row]) {
    let map: BTreeMap<(String, usize, u8, u64), embedstab_core::MeasureValues> = with
        .iter()
        .filter_map(|r| {
            r.measures
                .map(|m| ((r.algo.clone(), r.dim, r.bits, r.seed), m))
        })
        .collect();
    for r in rows.iter_mut() {
        if r.measures.is_none() {
            r.measures = map.get(&(r.algo.clone(), r.dim, r.bits, r.seed)).copied();
        }
    }
}

/// Computes (or loads) the standard full-grid rows for the given tasks
/// over the three main algorithms. Measures are computed once — during the
/// first task's grid — and attached to the rest, since they only depend on
/// the embedding pair.
///
/// Row caches live under `results/rows_<task>_<scale>.json`.
pub fn standard_rows(scale: Scale, tasks: &[&str]) -> BTreeMap<String, Vec<Row>> {
    use embedstab_pipeline::{run_ner_grid, run_sentiment_grid, GridOptions};
    let tag = scale_tag(scale);
    let mut exp: Option<Experiment> = None;
    let mut out: BTreeMap<String, Vec<Row>> = BTreeMap::new();
    let mut measure_source: Option<Vec<Row>> = None;
    for (i, &task) in tasks.iter().enumerate() {
        let name = format!("rows_{task}_{tag}");
        let first = i == 0;
        let rows = {
            let exp_ref = &mut exp;
            rows_cached(&name, || {
                let e = exp_ref.get_or_insert_with(|| {
                    eprintln!("[setup] building world + embedding grid ({tag})...");
                    setup(scale, &embedstab_embeddings::Algo::MAIN)
                });
                let opts = GridOptions {
                    with_measures: first,
                    ..Default::default()
                };
                eprintln!("[run] {task} grid...");
                if task == "ner" {
                    run_ner_grid(&e.world, &e.grid, &opts)
                } else {
                    run_sentiment_grid(&e.world, &e.grid, task, &opts)
                }
            })
        };
        let mut rows = rows;
        if first {
            measure_source = Some(rows.clone());
        } else if let Some(src) = &measure_source {
            attach_measures(&mut rows, src);
        }
        out.insert(task.to_string(), rows);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_core::MeasureValues;

    fn row(task: &str, algo: &str, dim: usize, bits: u8, seed: u64, di: f64) -> Row {
        Row {
            task: task.into(),
            algo: algo.into(),
            dim,
            bits,
            memory: dim as u64 * bits as u64,
            seed,
            disagreement: di,
            quality17: 0.8,
            quality18: 0.8,
            measures: Some(MeasureValues {
                eis: di * 0.9,
                knn_dist: di * 1.1,
                semantic_displacement: 0.5,
                pip_loss: 1.0,
                overlap_dist: 0.5,
            }),
        }
    }

    #[test]
    fn aggregate_means_and_stds() {
        let rows = vec![
            row("sst2", "MC", 8, 4, 0, 0.10),
            row("sst2", "MC", 8, 4, 1, 0.20),
            row("sst2", "MC", 16, 4, 0, 0.05),
        ];
        let agg = aggregate(&rows);
        assert_eq!(agg.len(), 2);
        let g = agg.iter().find(|a| a.dim == 8).expect("group");
        assert!((g.mean_di - 0.15).abs() < 1e-12);
        assert_eq!(g.n_seeds, 2);
    }

    #[test]
    fn spearman_uses_requested_measure() {
        // EIS tracks DI perfectly (rank-wise) in the fixture.
        let rows: Vec<Row> = (0..6)
            .map(|i| row("sst2", "MC", 4 << i, 32, 0, 0.02 * (6 - i) as f64))
            .collect();
        let rho = spearman_for(&rows, MeasureKind::Eis).expect("measures present");
        assert!((rho - 1.0).abs() < 1e-9);
    }

    #[test]
    fn config_points_split_by_seed() {
        let rows = vec![
            row("sst2", "MC", 8, 4, 0, 0.1),
            row("sst2", "MC", 8, 8, 0, 0.05),
            row("sst2", "MC", 8, 4, 1, 0.2),
        ];
        let per_seed = config_points_per_seed(&rows, MeasureKind::Knn);
        assert_eq!(per_seed.len(), 2);
        assert_eq!(per_seed[0].len(), 2);
        assert_eq!(per_seed[1].len(), 1);
    }
}
