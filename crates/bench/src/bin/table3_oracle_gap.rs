//! Table 3: average absolute gap (in % disagreement) to the oracle when
//! selecting the dimension-precision combination under fixed memory
//! budgets, including the naive high/low-precision baselines.

use embedstab_bench::{config_points_per_seed, rows_for_algo, standard_rows};
use embedstab_core::measures::MeasureKind;
use embedstab_core::selection::{budget_baseline, budget_selection, BudgetBaseline};
use embedstab_core::stats;
use embedstab_pipeline::report::{num, print_table};
use embedstab_pipeline::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = standard_rows(scale, &["sst2", "subj", "ner"]);
    let algos = ["CBOW", "GloVe", "MC"];
    let tasks = ["sst2", "subj", "ner"];

    println!("\n=== Table 3: mean gap to oracle under fixed memory budgets (abs %) ===");
    let mut header: Vec<String> = vec!["selector".into()];
    for task in tasks {
        for algo in algos {
            header.push(format!("{task}/{algo}"));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Vec::new();

    // Measure-driven selectors.
    for kind in MeasureKind::ALL {
        let mut line = vec![kind.name().to_string()];
        for task in tasks {
            for algo in algos {
                let sub = rows_for_algo(&rows[task], algo);
                let gaps: Vec<f64> = config_points_per_seed(&sub, kind)
                    .iter()
                    .map(|pts| 100.0 * budget_selection(pts).mean_gap)
                    .collect();
                line.push(if gaps.is_empty() {
                    "n/a".into()
                } else {
                    num(stats::mean(&gaps), 2)
                });
            }
        }
        table.push(line);
    }
    // Naive baselines (measure values irrelevant; any kind's points work).
    for (name, baseline) in [
        ("High Precision", BudgetBaseline::HighPrecision),
        ("Low Precision", BudgetBaseline::LowPrecision),
    ] {
        let mut line = vec![name.to_string()];
        for task in tasks {
            for algo in algos {
                let sub = rows_for_algo(&rows[task], algo);
                let gaps: Vec<f64> = config_points_per_seed(&sub, MeasureKind::Eis)
                    .iter()
                    .map(|pts| 100.0 * budget_baseline(pts, baseline).mean_gap)
                    .collect();
                line.push(if gaps.is_empty() {
                    "n/a".into()
                } else {
                    num(stats::mean(&gaps), 2)
                });
            }
        }
        table.push(line);
    }
    print_table(&header_refs, &table);
    println!("\nPaper shape: EIS and 1-k-NN stay closest to the oracle; PIP and the");
    println!("low-precision baseline can be several points worse.");
}
