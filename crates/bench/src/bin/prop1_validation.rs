//! Proposition 1, numerically: the eigenspace instability measure equals
//! the expected prediction disagreement of least-squares linear models
//! trained on the two embeddings, for labels y ~ (0, Sigma).
//!
//! Validates the identity both on random matrices and on actually trained
//! embedding pairs.

use embedstab_bench::setup;
use embedstab_core::theory::{eis_dense, monte_carlo_disagreement, SigmaFactor};
use embedstab_embeddings::Algo;
use embedstab_linalg::Mat;
use embedstab_pipeline::report::{num, print_table};
use embedstab_pipeline::Scale;
use rand::SeedableRng;

fn main() {
    println!("\n=== Proposition 1: EIS == E[OLS disagreement] / E[||y||^2] ===");
    let mut table = Vec::new();

    // Random-matrix instances across shapes and alpha.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    for (n, dx, dy, alpha) in [(40, 5, 5, 1.0), (60, 8, 4, 2.0), (50, 6, 10, 3.0)] {
        let x = Mat::random_normal(n, dx, &mut rng);
        let y = Mat::random_normal(n, dy, &mut rng);
        let e17 = Mat::random_normal(n, 8, &mut rng);
        let e18 = Mat::random_normal(n, 8, &mut rng);
        let sigma = SigmaFactor::from_references(&e17, &e18, alpha);
        let exact = eis_dense(&x, &y, &sigma.dense());
        let mc = monte_carlo_disagreement(&x, &y, &sigma, 3000, 7);
        table.push(vec![
            format!("random n={n} d=({dx},{dy}) a={alpha}"),
            num(exact, 4),
            num(mc, 4),
            num((exact - mc).abs(), 4),
        ]);
    }

    // Trained embeddings from a tiny world: the identity is about the
    // matrices, so it must hold for real (Wiki'17, Wiki'18) pairs too.
    let exp = setup(Scale::Tiny, &[Algo::Mc]);
    let dims = exp.world.params.dims.clone();
    for &dim in &dims {
        let (x17, x18) = exp.grid.pair(Algo::Mc, dim, 0);
        let (e17, e18) = exp.grid.pair(Algo::Mc, *dims.last().expect("dims"), 0);
        let sigma = SigmaFactor::from_references(e17.mat(), e18.mat(), 3.0);
        let exact = eis_dense(x17.mat(), x18.mat(), &sigma.dense());
        let mc = monte_carlo_disagreement(x17.mat(), x18.mat(), &sigma, 2000, 9);
        table.push(vec![
            format!("MC embeddings d={dim} a=3"),
            num(exact, 4),
            num(mc, 4),
            num((exact - mc).abs(), 4),
        ]);
    }
    print_table(
        &["instance", "EIS (exact)", "Monte-Carlo", "|diff|"],
        &table,
    );
    println!("\nThe Monte-Carlo estimate converges to the exact measure (Prop. 1).");
}
