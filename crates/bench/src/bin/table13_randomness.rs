//! Table 13 (Appendix E.3): how much instability each downstream
//! randomness source contributes, compared to changing the embedding
//! training data — with fixed full-precision embeddings, vary only the
//! model-initialization seed, only the sampling-order seed, or only the
//! embedding corpus.

use embedstab_bench::setup;
use embedstab_core::disagreement;
use embedstab_downstream::models::{BowSentimentModel, TrainSpec};
use embedstab_embeddings::Algo;
use embedstab_pipeline::report::{pct, print_table};
use embedstab_pipeline::Scale;

fn main() {
    let scale = Scale::from_args();
    let exp = setup(scale, &[Algo::Cbow, Algo::Mc]);
    let params = &exp.world.params;
    // The paper uses the 400-dimensional full-precision embeddings; use
    // the second-largest dimension of the sweep.
    let dim = params.dims[params.dims.len().saturating_sub(2)];
    let base = TrainSpec {
        lr: 0.01,
        epochs: params.logreg_epochs,
        ..Default::default()
    };

    println!("\n=== Table 13: downstream randomness sources (dim={dim}, b=32) ===");
    let mut table = Vec::new();
    for algo in [Algo::Cbow, Algo::Mc] {
        for ds in &exp.world.sentiment {
            let mut dis = [0.0f64; 3];
            let mut counts = [0usize; 3];
            for &seed in &params.seeds {
                let (x17, x18) = exp.grid.pair(algo, dim, seed);
                let spec = TrainSpec {
                    init_seed: seed,
                    sample_seed: seed,
                    ..base.clone()
                };
                let reference = BowSentimentModel::train(x17, &ds.train, &spec);
                let ref_preds = reference.predict(x17, &ds.test);
                // (1) model initialization seed.
                let m = BowSentimentModel::train(
                    x17,
                    &ds.train,
                    &TrainSpec {
                        init_seed: seed.wrapping_add(500),
                        ..spec.clone()
                    },
                );
                dis[0] += disagreement(&ref_preds, &m.predict(x17, &ds.test));
                counts[0] += 1;
                // (2) sampling order seed.
                let m = BowSentimentModel::train(
                    x17,
                    &ds.train,
                    &TrainSpec {
                        sample_seed: seed.wrapping_add(500),
                        ..spec.clone()
                    },
                );
                dis[1] += disagreement(&ref_preds, &m.predict(x17, &ds.test));
                counts[1] += 1;
                // (3) embedding training data ('17 vs '18 corpus).
                let m = BowSentimentModel::train(x18, &ds.train, &spec);
                dis[2] += disagreement(&ref_preds, &m.predict(x18, &ds.test));
                counts[2] += 1;
            }
            table.push(vec![
                algo.name().to_string(),
                ds.name.clone(),
                pct(dis[0] / counts[0] as f64),
                pct(dis[1] / counts[1] as f64),
                pct(dis[2] / counts[2] as f64),
            ]);
        }
    }
    print_table(
        &[
            "algo",
            "task",
            "init-seed %",
            "sample-seed %",
            "embedding-data %",
        ],
        &table,
    );
    println!("\nPaper shape: at full precision and high dimension the downstream seeds");
    println!("contribute instability comparable to the embedding-data change; at low");
    println!("memory the embedding change dominates (Appendix E.3).");
}
