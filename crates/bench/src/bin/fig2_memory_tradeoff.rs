//! Figure 2 + Section 3.3: downstream instability of NER across memory
//! budgets for every dimension-precision combination, the linear-log rule
//! of thumb, and the relative impact of dimension vs precision.

use embedstab_bench::{aggregate, standard_rows};
use embedstab_core::stats::{linear_log_fit, TrendPoint};
use embedstab_core::trend::{fit_rule_of_thumb, Observation};
use embedstab_pipeline::report::{num, pct, print_table};
use embedstab_pipeline::{Row, Scale};

fn main() {
    let scale = Scale::from_args();
    let rows = standard_rows(scale, &["sst2", "mr", "subj", "mpqa", "ner"]);

    // Figure 2 proper: NER instability vs bits/word, one line per precision.
    println!("\n=== Figure 2: NER % disagreement vs memory (bits/word) ===");
    let agg = aggregate(&rows["ner"]);
    let mut table = Vec::new();
    for a in &agg {
        table.push(vec![
            a.algo.clone(),
            a.bits.to_string(),
            a.dim.to_string(),
            a.memory.to_string(),
            pct(a.mean_di),
        ]);
    }
    print_table(&["algo", "bits", "dim", "bits/word", "disagree%"], &table);

    // Rule of thumb (Section 3.3 / Appendix C.4): fit over the five tasks
    // and the CBOW + MC algorithms, below the plateau cutoff. The paper's
    // cutoff (10^3 of a 25.6k-bit range) is mirrored proportionally.
    let all: Vec<&Row> = rows.values().flatten().collect();
    let max_mem = all.iter().map(|r| r.memory).max().unwrap_or(1) as f64;
    let cutoff = max_mem / 25.6;
    let obs: Vec<Observation> = all
        .iter()
        .filter(|r| r.algo == "CBOW" || r.algo == "MC")
        .map(|r| Observation {
            group: format!("{}/{}", r.task, r.algo),
            memory_bits: r.memory as f64,
            disagreement_pct: 100.0 * r.disagreement,
        })
        .collect();
    match fit_rule_of_thumb(&obs, cutoff) {
        Some(fit) => {
            println!(
                "\nRule of thumb (memory <= {cutoff:.0} bits/word, {} points):",
                fit.n_points
            );
            println!(
                "  DI_T ~ C_T - {:.2} * log2(bits/word)   (paper: 1.3)",
                fit.drop_per_doubling
            );
            let lo = fit
                .intercepts
                .iter()
                .zip(&fit.groups)
                .map(|(c, g)| (fit.predict(g, cutoff), c))
                .fold(f64::INFINITY, |m, (p, _)| m.min(p))
                .max(0.5);
            println!(
                "  2x memory => -{:.2}% absolute; relative reduction up to {:.0}% at DI={:.1}%",
                fit.drop_per_doubling,
                100.0 * fit.relative_reduction(lo),
                lo
            );
        }
        None => println!("\nRule of thumb: no observations under the cutoff"),
    }

    // Dimension vs precision slopes (Section 3.3): fit log2(dim) with a
    // per-(task, algo, bits) intercept, and log2(bits) with a
    // per-(task, algo, dim) intercept.
    let slope = |x_of: &dyn Fn(&Row) -> f64, group_of: &dyn Fn(&Row) -> String| -> Option<f64> {
        let mut groups: Vec<String> = Vec::new();
        let mut pts = Vec::new();
        for r in all.iter().filter(|r| r.algo == "CBOW" || r.algo == "MC") {
            if (r.memory as f64) > cutoff {
                continue;
            }
            let g = group_of(r);
            let task = match groups.iter().position(|x| *x == g) {
                Some(i) => i,
                None => {
                    groups.push(g);
                    groups.len() - 1
                }
            };
            pts.push(TrendPoint {
                task,
                x: x_of(r),
                y: 100.0 * r.disagreement,
            });
        }
        linear_log_fit(&pts, groups.len()).map(|f| f.slope)
    };
    let dim_slope = slope(&|r| r.dim as f64, &|r| {
        format!("{}/{}/b{}", r.task, r.algo, r.bits)
    });
    let prec_slope = slope(&|r| r.bits as f64, &|r| {
        format!("{}/{}/d{}", r.task, r.algo, r.dim)
    });
    println!("\nIndependent linear-log slopes below the cutoff (paper: dim 1.2, precision 1.4):");
    println!(
        "  2x dimension => -{}% absolute",
        dim_slope.map(|s| num(s, 2)).unwrap_or_else(|| "n/a".into())
    );
    println!(
        "  2x precision => -{}% absolute",
        prec_slope
            .map(|s| num(s, 2))
            .unwrap_or_else(|| "n/a".into())
    );
}
