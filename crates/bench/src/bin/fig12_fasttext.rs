//! Figure 12 (Appendix E.1): the stability-memory tradeoff for fastText
//! skipgram subword embeddings on SST-2 and NER.

use embedstab_bench::aggregate;
use embedstab_embeddings::Algo;
use embedstab_pipeline::report::{pct, print_table};
use embedstab_pipeline::{Experiment, Scale, World};

fn main() {
    let scale = Scale::from_args();
    let mut params = scale.params();
    // Subword training is ~an order of magnitude costlier per token than
    // CBOW; one seed and the lower dimensions preserve the trend.
    params.seeds = vec![0];
    if params.dims.len() > 4 {
        params.dims.truncate(params.dims.len() - 1);
    }
    let world = World::build(&params, 0);

    println!("\n=== Figure 12: fastText skipgram memory tradeoff ===");
    let mut rows = Experiment::new(&world)
        .tasks(["sst2", "ner"])
        .algos([Algo::FastTextSg])
        .run();
    let ner: Vec<_> = rows.iter().filter(|r| r.task == "ner").cloned().collect();
    rows.retain(|r| r.task == "sst2");
    let sst2 = rows;
    for (task, rows) in [("sst2", &sst2), ("ner", &ner)] {
        println!("\n--- FT-SG, {task} ---");
        let mut table = Vec::new();
        for a in aggregate(rows) {
            table.push(vec![
                a.bits.to_string(),
                a.dim.to_string(),
                a.memory.to_string(),
                pct(a.mean_di),
            ]);
        }
        print_table(&["bits", "dim", "bits/word", "disagree%"], &table);
    }
    println!("\nPaper shape: instability falls with memory; the dimension trend is");
    println!("weaker for SST-2 at high precision (Appendix E.1).");
}
