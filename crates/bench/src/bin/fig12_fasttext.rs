//! Figure 12 (Appendix E.1): the stability-memory tradeoff for fastText
//! skipgram subword embeddings on SST-2 and NER.

use embedstab_bench::aggregate;
use embedstab_embeddings::Algo;
use embedstab_pipeline::report::{pct, print_table};
use embedstab_pipeline::{
    run_ner_grid, run_sentiment_grid, EmbeddingGrid, GridOptions, Scale, World,
};

fn main() {
    let scale = Scale::from_args();
    let mut params = scale.params();
    // Subword training is ~an order of magnitude costlier per token than
    // CBOW; one seed and the lower dimensions preserve the trend.
    params.seeds = vec![0];
    if params.dims.len() > 4 {
        params.dims.truncate(params.dims.len() - 1);
    }
    let world = World::build(&params, 0);
    let grid = EmbeddingGrid::build(&world, &[Algo::FastTextSg], &params.dims, &params.seeds);
    let opts = GridOptions {
        algos: vec![Algo::FastTextSg],
        ..Default::default()
    };

    println!("\n=== Figure 12: fastText skipgram memory tradeoff ===");
    let sst2 = run_sentiment_grid(&world, &grid, "sst2", &opts);
    let ner = run_ner_grid(&world, &grid, &opts);
    for (task, rows) in [("sst2", &sst2), ("ner", &ner)] {
        println!("\n--- FT-SG, {task} ---");
        let mut table = Vec::new();
        for a in aggregate(rows) {
            table.push(vec![
                a.bits.to_string(),
                a.dim.to_string(),
                a.memory.to_string(),
                pct(a.mean_di),
            ]);
        }
        print_table(&["bits", "dim", "bits/word", "disagree%"], &table);
    }
    println!("\nPaper shape: instability falls with memory; the dimension trend is");
    println!("weaker for SST-2 at high precision (Appendix E.1).");
}
