//! Figure 3: stability-memory tradeoff for TransE knowledge-graph
//! embeddings — unstable-rank@10 for link prediction (left) and prediction
//! disagreement for triplet classification (right), between embeddings
//! trained on the full graph and on 95% of its training triplets.

use embedstab_core::disagreement;
use embedstab_core::trend::{fit_rule_of_thumb, Observation};
use embedstab_kge::{
    link_prediction_ranks, make_negatives, mean_rank, quantize_transe_pair, train_transe,
    unstable_rank_at_10, KgSpec, TranseConfig, TripletClassifier,
};
use embedstab_pipeline::report::{num, pct, print_table};
use embedstab_pipeline::Scale;
use embedstab_quant::Precision;

fn main() {
    let scale = Scale::from_args();
    let (dims, spec) = match scale {
        Scale::Tiny => (
            vec![4, 8, 16],
            KgSpec {
                n_entities: 120,
                n_relations: 8,
                triplets_per_relation: 100,
                ..Default::default()
            },
        ),
        Scale::Small => (vec![4, 8, 16, 32, 64], KgSpec::default()),
        Scale::Paper => (
            vec![10, 20, 50, 100, 200, 400],
            KgSpec {
                n_entities: 2000,
                n_relations: 40,
                triplets_per_relation: 800,
                ..Default::default()
            },
        ),
    };
    let precisions = match scale {
        Scale::Tiny => vec![Precision::new(1), Precision::new(4), Precision::FULL],
        _ => Precision::SWEEP.to_vec(),
    };
    let cfg = TranseConfig::default();

    println!("\n=== Figure 3: TransE stability vs memory (bits/vector) ===");
    let kg = spec.generate();
    let kg95 = kg.subsample_train(0.95, 1);
    println!(
        "graph: {} entities, {} relations, {} train triplets ({} in the 95% subsample)",
        kg.n_entities,
        kg.n_relations,
        kg.train.len(),
        kg95.train.len()
    );
    let valid_neg = make_negatives(&kg, &kg.valid, 0);
    let test_neg = make_negatives(&kg, &kg.test, 1);

    let mut table = Vec::new();
    let mut obs_link = Vec::new();
    for &dim in &dims {
        let full = train_transe(&kg, dim, &cfg, 0);
        let sub = train_transe(&kg95, dim, &cfg, 0);
        for &prec in &precisions {
            let (qf, qs) = quantize_transe_pair(&full, &sub, prec);
            // Link prediction instability.
            let ranks_f = link_prediction_ranks(&qf, kg.n_entities, &kg.test);
            let ranks_s = link_prediction_ranks(&qs, kg.n_entities, &kg.test);
            let unstable = unstable_rank_at_10(&ranks_f, &ranks_s);
            // Triplet classification disagreement: thresholds tuned on the
            // FB15K-95 side and reused for the full graph (paper Fig. 3).
            let clf = TripletClassifier::fit(&qs, &kg.valid, &valid_neg, kg.n_relations);
            let mut preds_f = clf.predict(&qf, &kg.test);
            preds_f.extend(clf.predict(&qf, &test_neg));
            let mut preds_s = clf.predict(&qs, &kg.test);
            preds_s.extend(clf.predict(&qs, &test_neg));
            let di = disagreement(&preds_f, &preds_s);
            let memory = dim as u64 * prec.bits() as u64;
            obs_link.push(Observation {
                group: "link".into(),
                memory_bits: memory as f64,
                disagreement_pct: 100.0 * unstable,
            });
            table.push(vec![
                dim.to_string(),
                prec.bits().to_string(),
                memory.to_string(),
                pct(unstable),
                pct(di),
                num(mean_rank(&ranks_f), 1),
            ]);
        }
    }
    print_table(
        &[
            "dim",
            "bits",
            "bits/vec",
            "unstable-rank@10 %",
            "triplet-cls disagree%",
            "mean rank",
        ],
        &table,
    );

    if let Some(fit) = fit_rule_of_thumb(&obs_link, f64::INFINITY) {
        println!(
            "\nLinear-log fit: 2x memory => -{:.2}% unstable-rank@10 (paper: 7-19% relative)",
            fit.drop_per_doubling
        );
    }
    println!("Paper shape: both instability metrics fall as bits/vector grows.");
}
