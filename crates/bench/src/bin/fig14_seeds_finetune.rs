//! Figure 14 (Appendix E.3/E.4): (a) the stability-memory tradeoff with
//! the downstream seed constraint relaxed (different model-init and
//! sampling seeds between the paired models), and (b) with embeddings
//! fine-tuned during downstream training.

use embedstab_bench::{aggregate, setup};
use embedstab_embeddings::Algo;
use embedstab_pipeline::report::{pct, print_table};
use embedstab_pipeline::{Experiment, Scale};

fn main() {
    let scale = Scale::from_args();
    let exp = setup(scale, &[Algo::Cbow, Algo::Mc]);
    let base = || {
        Experiment::new(&exp.world)
            .grid(&exp.grid)
            .tasks(["sst2"])
            .algos([Algo::Cbow, Algo::Mc])
    };

    println!("\n=== Figure 14a: SST-2 memory tradeoff with relaxed seeds ===");
    let rows = base().relax_seeds(true).run();
    let fixed = base().run();
    let agg_r = aggregate(&rows);
    let agg_f = aggregate(&fixed);
    let mut table = Vec::new();
    for (r, f) in agg_r.iter().zip(&agg_f) {
        table.push(vec![
            r.algo.clone(),
            r.bits.to_string(),
            r.dim.to_string(),
            r.memory.to_string(),
            pct(f.mean_di),
            pct(r.mean_di),
        ]);
    }
    print_table(
        &[
            "algo",
            "bits",
            "dim",
            "bits/word",
            "fixed-seed %",
            "relaxed-seed %",
        ],
        &table,
    );

    println!("\n=== Figure 14b: SST-2 memory tradeoff with fine-tuned embeddings ===");
    let rows_t = base().fine_tune_lr(0.05).run();
    let agg_t = aggregate(&rows_t);
    let mut table = Vec::new();
    for (t, f) in agg_t.iter().zip(&agg_f) {
        table.push(vec![
            t.algo.clone(),
            t.bits.to_string(),
            t.dim.to_string(),
            t.memory.to_string(),
            pct(f.mean_di),
            pct(t.mean_di),
        ]);
    }
    print_table(
        &[
            "algo",
            "bits",
            "dim",
            "bits/word",
            "fixed-emb %",
            "fine-tuned %",
        ],
        &table,
    );
    println!("\nPaper shape: the memory trend survives both relaxations; relaxed seeds");
    println!("shift instability up slightly, fine-tuning reduces it overall (App. E).");
}
