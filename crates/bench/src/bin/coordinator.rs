//! Shard coordinator: a `Paper`-scale grid on a many-core box as **one
//! command**.
//!
//! ```text
//! coordinator --shards 8 --bin fig2_memory_tradeoff --scale paper \
//!     --cache-dir pair-cache --world-cache world-cache [-- extra args...]
//! ```
//!
//! What it does, in order:
//!
//! 1. **Builds (or loads) the world exactly once** through the on-disk
//!    [`WorldCache`](embedstab_pipeline::WorldCache) — previously every
//!    shard process rebuilt the corpus pair, co-occurrence statistics,
//!    and downstream datasets from scratch, which dominated sharded runs.
//! 2. **Spawns N shard subprocesses** of the given figure/rows binary
//!    with `--shard i/n --cache-dir ... --world-cache ...`, so each shard
//!    loads the world, trains only its slice of the pair grid (sharing
//!    trained pairs through the pair cache), and streams its rows to
//!    `results/rows_<task>_<scale>.shard<i>of<n>.jsonl`. Each shard's
//!    stdout/stderr goes to `results/coordinator_shard<i>of<n>.log`.
//! 3. **Waits with per-shard failure reporting**, then fans the shard
//!    JSONLs through the validated `merge_rows` path into
//!    `results/<stem>.merged.jsonl` — for a complete fleet the merged
//!    rows are bitwise identical to the unsharded run (the bench crate's
//!    `coordinator` integration test pins this end to end).
//!
//! The shard binary is resolved next to the coordinator executable by
//! default; pass a path (anything containing a separator) to override.
//! Everything after a bare `--` is forwarded to every shard verbatim.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use embedstab_bench::{clean_stale_shard_rows, merge_fleet_results, resolve_bin, scale_tag};
use embedstab_pipeline::{Scale, World, WorldCache};

const RESULTS_DIR: &str = "results";

struct Args {
    shards: usize,
    bin: String,
    cache_dir: PathBuf,
    world_cache: PathBuf,
    extra: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut out = Args {
        shards: 0,
        bin: "fig2_memory_tradeoff".to_string(),
        cache_dir: PathBuf::from("pair-cache"),
        world_cache: PathBuf::from("world-cache"),
        extra: Vec::new(),
    };
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                out.shards = next(&mut args, "--shards")
                    .parse()
                    .unwrap_or_else(|_| usage("--shards needs a positive integer"));
            }
            "--bin" => out.bin = next(&mut args, "--bin"),
            "--cache-dir" => out.cache_dir = PathBuf::from(next(&mut args, "--cache-dir")),
            "--world-cache" => out.world_cache = PathBuf::from(next(&mut args, "--world-cache")),
            // --scale is read by Scale::from_args from the raw argv; keep
            // it out of the forwarded extras to avoid passing it twice.
            "--scale" => {
                let _ = next(&mut args, "--scale");
            }
            "--" => {
                out.extra.extend(args.by_ref());
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if out.shards == 0 {
        usage("missing --shards N (N >= 1)");
    }
    out
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: coordinator --shards N [--bin name-or-path] [--scale tiny|small|paper]\n\
         \x20        [--cache-dir <dir>] [--world-cache <dir>] [-- args forwarded to shards]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn shard_log_path(index: usize, n: usize) -> PathBuf {
    Path::new(RESULTS_DIR).join(format!("coordinator_shard{index}of{n}.log"))
}

fn main() {
    let args = parse_args();
    let scale = Scale::from_args();
    let tag = scale_tag(scale);
    let bin = resolve_bin(&args.bin);
    fs::create_dir_all(RESULTS_DIR).unwrap_or_else(|e| panic!("cannot create {RESULTS_DIR}: {e}"));
    clean_stale_shard_rows(Path::new(RESULTS_DIR), args.shards);

    // Step 1: the world is built (or loaded) exactly once, here. Shards
    // receive --world-cache and load it instead of rebuilding; the world
    // itself is dropped before spawning so the coordinator does not sit on
    // a world-sized allocation while the fleet runs.
    let t0 = Instant::now();
    let params = scale.params();
    let world = World::load_or_build(&params, 0, &args.world_cache).unwrap_or_else(|e| {
        panic!(
            "cannot open world cache {}: {e}",
            args.world_cache.display()
        )
    });
    let world_file = WorldCache::open(&args.world_cache)
        .expect("world cache just opened")
        .path(&params, 0);
    assert!(
        world_file.exists(),
        "world cache file {} missing after build; shards would rebuild the world",
        world_file.display()
    );
    drop(world);
    eprintln!(
        "[coordinator] world ready in {:.1}s ({})",
        t0.elapsed().as_secs_f64(),
        world_file.display()
    );

    // Step 2: spawn the fleet.
    let mut children: Vec<(usize, Child)> = Vec::new();
    for index in 0..args.shards {
        let log_path = shard_log_path(index, args.shards);
        let log = fs::File::create(&log_path)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", log_path.display()));
        let err_log = log.try_clone().expect("log handle clones");
        let child = Command::new(&bin)
            .arg("--scale")
            .arg(tag)
            .arg("--shard")
            .arg(format!("{index}/{}", args.shards))
            .arg("--cache-dir")
            .arg(&args.cache_dir)
            .arg("--world-cache")
            .arg(&args.world_cache)
            .args(&args.extra)
            .stdout(Stdio::from(log))
            .stderr(Stdio::from(err_log))
            .spawn()
            .unwrap_or_else(|e| panic!("cannot spawn shard {index}: {e}"));
        eprintln!(
            "[coordinator] shard {index}/{} -> pid {}, log {}",
            args.shards,
            child.id(),
            log_path.display()
        );
        children.push((index, child));
    }

    // Step 3: reap shards as they exit (polling, not sequential waits in
    // spawn order — shard 0 finishing last must not delay the report, or
    // the zombie reap, of every other shard), reporting every outcome
    // rather than just the first failure.
    let mut failures = Vec::new();
    let mut live: Vec<(usize, Child)> = children;
    while !live.is_empty() {
        let mut still_running = Vec::with_capacity(live.len());
        for (index, mut child) in live {
            match child.try_wait() {
                Ok(Some(status)) => {
                    if status.success() {
                        eprintln!("[coordinator] shard {index}/{} finished", args.shards);
                    } else {
                        eprintln!(
                            "[coordinator] shard {index}/{} FAILED ({status}); see {}",
                            args.shards,
                            shard_log_path(index, args.shards).display()
                        );
                        failures.push(index);
                    }
                }
                Ok(None) => still_running.push((index, child)),
                Err(e) => panic!("cannot wait for shard {index}: {e}"),
            }
        }
        live = still_running;
        if !live.is_empty() {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    if !failures.is_empty() {
        eprintln!(
            "[coordinator] {} of {} shards failed ({:?}); not merging — \
             rerun, or salvage with: merge_rows --partial",
            failures.len(),
            args.shards,
            failures
        );
        std::process::exit(1);
    }

    // Step 4: fan in. Group this fleet's shard files by stem and merge
    // each complete set into <stem>.merged.jsonl.
    let merged = merge_fleet_results(Path::new(RESULTS_DIR), args.shards)
        .unwrap_or_else(|e| panic!("merging shard files failed: {e}"));
    if merged.is_empty() {
        eprintln!("[coordinator] warning: shards wrote no row files; nothing to merge");
        return;
    }
    for (_, out, rows) in merged {
        eprintln!(
            "[coordinator] merged {} shard(s) -> {} ({} rows)",
            args.shards,
            out.display(),
            rows
        );
    }
    eprintln!(
        "[coordinator] done in {:.1}s total",
        t0.elapsed().as_secs_f64()
    );
}
