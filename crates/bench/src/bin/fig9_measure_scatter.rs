//! Figure 9 (Appendix D.4): downstream NER disagreement versus each
//! embedding distance measure, with Spearman correlations, per algorithm.

use embedstab_bench::{rows_for_algo, spearman_for, standard_rows};
use embedstab_core::measures::MeasureKind;
use embedstab_pipeline::report::{num, pct, print_table};
use embedstab_pipeline::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = standard_rows(scale, &["sst2", "ner"]);
    let ner = &rows["ner"];

    for algo in ["CBOW", "GloVe", "MC"] {
        let sub = rows_for_algo(ner, algo);
        println!("\n=== Figure 9 ({algo}): NER disagreement vs measures ===");
        let mut table = Vec::new();
        let mut sorted = sub.clone();
        // One NaN disagreement row must not panic the figure; it sorts
        // to the bottom of the table instead.
        sorted.sort_by(|a, b| embedstab_core::stats::cmp_nan_last(a.disagreement, b.disagreement));
        for r in &sorted {
            let Some(m) = r.measures else { continue };
            table.push(vec![
                format!("d={} b={}", r.dim, r.bits),
                pct(r.disagreement),
                num(m.eis, 4),
                num(m.knn_dist, 3),
                num(m.semantic_displacement, 3),
                num(m.pip_loss, 1),
                num(m.overlap_dist, 3),
            ]);
        }
        print_table(
            &[
                "config",
                "disagree%",
                "EIS",
                "1-kNN",
                "SemDisp",
                "PIP",
                "1-overlap",
            ],
            &table,
        );
        let mut rho_line = Vec::new();
        for kind in MeasureKind::ALL {
            let rho = spearman_for(&sub, kind)
                .map(|r| num(r, 2))
                .unwrap_or_else(|| "n/a".into());
            rho_line.push(format!("{} rho={}", kind.name(), rho));
        }
        println!("{}", rho_line.join("  |  "));
    }
    println!("\nPaper shape: EIS and 1-kNN increase monotonically-ish with");
    println!("disagreement; PIP and overlap are much noisier (Appendix D.4).");
}
