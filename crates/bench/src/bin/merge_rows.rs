//! Shard coordinator fan-in: merge the per-shard JSONL row files a
//! sharded grid run leaves behind (`rows_<task>_<scale>.shard<i>of<n>.jsonl`)
//! into one sorted, de-duplicated JSONL.
//!
//! Usage:
//!
//! ```text
//! merge_rows [--partial] --out results/rows_sst2_small.jsonl \
//!     results/rows_sst2_small.shard0of2.jsonl \
//!     results/rows_sst2_small.shard1of2.jsonl
//! ```
//!
//! The output is canonical: rows sorted by `(task, algo, dim, bits, seed)`
//! with one row per configuration (later duplicates dropped), and — for a
//! complete shard set — bitwise identical to what the unsharded run would
//! have produced, so downstream table binaries can consume merged shard
//! output and the row cache interchangeably.
//!
//! The shard set is validated before merging: a missing shard or a mix of
//! shard counts is an error, because the output would silently claim
//! configurations it does not hold. `--partial` overrides the check to
//! salvage rows from a fleet with dead shards (the output is then
//! explicitly non-canonical).

use embedstab_bench::{merge_shard_rows, merge_shard_rows_partial, rows_to_jsonl};
use embedstab_pipeline::cache::atomic_write;
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out: Option<PathBuf> = None;
    let mut partial = false;
    let mut inputs: Vec<PathBuf> = Vec::new();
    while let Some(arg) = args.next() {
        if arg == "--out" {
            let path = args.next().unwrap_or_else(|| usage("--out needs a path"));
            out = Some(PathBuf::from(path));
        } else if arg == "--partial" {
            partial = true;
        } else if arg == "--help" || arg == "-h" {
            usage("");
        } else {
            inputs.push(PathBuf::from(arg));
        }
    }
    let out = out.unwrap_or_else(|| usage("missing --out"));
    if inputs.is_empty() {
        usage("no shard files given");
    }
    let merge = if partial {
        merge_shard_rows_partial
    } else {
        merge_shard_rows
    };
    // An incomplete/mixed shard set is an expected operator error, not a
    // bug: report it cleanly instead of panicking with a backtrace.
    let rows = merge(&inputs).unwrap_or_else(|e| {
        eprintln!("error: cannot merge shard files: {e}");
        std::process::exit(2);
    });
    atomic_write(&out, rows_to_jsonl(&rows).as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    eprintln!(
        "[merge_rows] merged {} shard file(s) into {} ({} rows{})",
        inputs.len(),
        out.display(),
        rows.len(),
        if partial { ", partial" } else { "" }
    );
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: merge_rows [--partial] --out <merged.jsonl> <shard.jsonl>...");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
