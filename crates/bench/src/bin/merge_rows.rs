//! Shard coordinator fan-in: merge the per-shard JSONL row files a
//! sharded grid run leaves behind (`rows_<task>_<scale>.shard<i>of<n>.jsonl`)
//! into one sorted, de-duplicated JSONL.
//!
//! Usage:
//!
//! ```text
//! merge_rows --out results/rows_sst2_small.jsonl \
//!     results/rows_sst2_small.shard0of2.jsonl \
//!     results/rows_sst2_small.shard1of2.jsonl
//! ```
//!
//! The output is canonical: rows sorted by `(task, algo, dim, bits, seed)`
//! with one row per configuration (later duplicates dropped), and — for a
//! complete shard set — bitwise identical to what the unsharded run would
//! have produced, so downstream table binaries can consume merged shard
//! output and the row cache interchangeably.

use embedstab_bench::{merge_shard_rows, rows_to_jsonl};
use embedstab_pipeline::cache::atomic_write;
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out: Option<PathBuf> = None;
    let mut inputs: Vec<PathBuf> = Vec::new();
    while let Some(arg) = args.next() {
        if arg == "--out" {
            let path = args.next().unwrap_or_else(|| usage("--out needs a path"));
            out = Some(PathBuf::from(path));
        } else if arg == "--help" || arg == "-h" {
            usage("");
        } else {
            inputs.push(PathBuf::from(arg));
        }
    }
    let out = out.unwrap_or_else(|| usage("missing --out"));
    if inputs.is_empty() {
        usage("no shard files given");
    }
    let rows = merge_shard_rows(&inputs).unwrap_or_else(|e| panic!("cannot read shard files: {e}"));
    atomic_write(&out, rows_to_jsonl(&rows).as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    eprintln!(
        "[merge_rows] merged {} shard file(s) into {} ({} rows)",
        inputs.len(),
        out.display(),
        rows.len()
    );
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: merge_rows --out <merged.jsonl> <shard.jsonl>...");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
