//! Figures 4, 5, and 6 (Appendix D.1): the dimension, precision, and
//! joint memory tradeoffs on the remaining sentiment tasks
//! (Subj, MR, MPQA; plus SST-2 in Figure 6).

use embedstab_bench::{aggregate, standard_rows};
use embedstab_pipeline::report::{pct, print_table};
use embedstab_pipeline::Scale;

fn main() {
    let scale = Scale::from_args();
    let params = scale.params();
    let rows = standard_rows(scale, &["sst2", "mr", "subj", "mpqa"]);
    let mid_dim = params.dims[params.dims.len() / 2];
    let min_bits = params
        .precisions
        .iter()
        .map(|p| p.bits())
        .min()
        .expect("precisions");

    // Figure 4: dimension effect at full precision and at the lowest
    // precision.
    for bits in [32u8, min_bits] {
        println!("\n=== Figure 4: % disagreement vs dimension at b={bits} ===");
        let mut table = Vec::new();
        for task in ["subj", "mr", "mpqa"] {
            for a in aggregate(&rows[task]).iter().filter(|a| a.bits == bits) {
                table.push(vec![
                    task.to_string(),
                    a.algo.clone(),
                    a.dim.to_string(),
                    pct(a.mean_di),
                ]);
            }
        }
        print_table(&["task", "algo", "dim", "disagree%"], &table);
    }

    // Figure 5: precision effect at the mid dimension.
    println!("\n=== Figure 5: % disagreement vs precision (dim={mid_dim}) ===");
    let mut table = Vec::new();
    for task in ["subj", "mr", "mpqa"] {
        for a in aggregate(&rows[task]).iter().filter(|a| a.dim == mid_dim) {
            table.push(vec![
                task.to_string(),
                a.algo.clone(),
                a.bits.to_string(),
                pct(a.mean_di),
            ]);
        }
    }
    print_table(&["task", "algo", "bits", "disagree%"], &table);

    // Figure 6: the full memory grid for all four sentiment tasks.
    println!("\n=== Figure 6: % disagreement vs memory, all sentiment tasks ===");
    let mut table = Vec::new();
    for task in ["sst2", "subj", "mr", "mpqa"] {
        for a in aggregate(&rows[task]) {
            table.push(vec![
                task.to_string(),
                a.algo.clone(),
                a.bits.to_string(),
                a.dim.to_string(),
                a.memory.to_string(),
                pct(a.mean_di),
            ]);
        }
    }
    print_table(
        &["task", "algo", "bits", "dim", "bits/word", "disagree%"],
        &table,
    );
    println!("\nPaper shape: instability falls with memory on every sentiment task;");
    println!("Subj is the most stable, MR the least (Appendix D.1).");
}
