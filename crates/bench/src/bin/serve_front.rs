//! The serving front-end binary: a threaded TCP server answering the
//! `embedstab_serve::wire` protocol from an on-disk snapshot store.
//!
//! ```text
//! # Bootstrap a Tiny-scale snapshot (CBOW on the synthetic '17 corpus)
//! # into ./serve-data and start serving it:
//! cargo run --release -p embedstab_bench --bin serve_front -- \
//!     --snapshot-dir serve-data --bootstrap-tiny --addr 127.0.0.1:7878
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound (the load
//! generator and the CI smoke step wait for that line), then serves until
//! killed. Queries arriving concurrently for the same tenant are
//! coalesced into single batched snapshot calls (`--batch-window-us`,
//! `--max-batch`); `--max-pending` bounds each tenant's queue, past which
//! requests are refused with `Overloaded` instead of queueing without
//! bound.
//!
//! Every malformed frame, unknown tenant, out-of-range id, wrong-dim
//! query, `k = 0`, or empty batch is answered with a typed error response;
//! the process never panics on client bytes (`serve_loadgen --fuzz`
//! drives exactly that contract).

use std::net::TcpListener;
use std::process::exit;
use std::time::Duration;

use embedstab_embeddings::{train_embedding, Algo};
use embedstab_pipeline::{Scale, World};
use embedstab_quant::Precision;
use embedstab_serve::{serve, ServerConfig, SnapshotStore, TenantConfig};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_front --snapshot-dir PATH [--bootstrap-tiny] \
         [--addr HOST:PORT] [--tenant NAME] [--batch-window-us N] \
         [--max-batch N] [--max-pending N]"
    );
    exit(2)
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("serve_front: bad value '{v}' for {flag}");
            usage()
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let Some(dir) = flag_value(&args, "--snapshot-dir") else {
        eprintln!("serve_front: --snapshot-dir is required");
        usage()
    };
    let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
    let tenant = flag_value(&args, "--tenant").unwrap_or_else(|| "default".into());
    let window_us: u64 = parse(&args, "--batch-window-us", 200);
    let max_batch: usize = parse(&args, "--max-batch", 64);
    let max_pending: usize = parse(&args, "--max-pending", 1024);

    let mut store = SnapshotStore::open(&dir).unwrap_or_else(|e| {
        eprintln!("serve_front: cannot open snapshot store {dir}: {e}");
        exit(1)
    });
    if store.live().is_none() {
        if !args.iter().any(|a| a == "--bootstrap-tiny") {
            eprintln!(
                "serve_front: store {dir} has no live snapshot; \
                 pass --bootstrap-tiny to build one at Tiny scale"
            );
            exit(1)
        }
        // The same deterministic world every Tiny-scale binary builds
        // (master seed 0), so the served vectors are reproducible.
        eprintln!("bootstrapping a Tiny-scale snapshot into {dir} ...");
        let params = Scale::Tiny.params();
        let world = World::build(&params, 0);
        let embedding = train_embedding(Algo::Cbow, &world.stats17, world.vocab(), 16, 0);
        let version = store
            .publish(&embedding, Precision::new(8), None)
            .unwrap_or_else(|e| {
                eprintln!("serve_front: bootstrap publish failed: {e}");
                exit(1)
            });
        eprintln!(
            "bootstrapped {version} (vocab {}, dim 16, 8 bits)",
            params.vocab_size
        );
    }

    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("serve_front: cannot bind {addr}: {e}");
        exit(1)
    });
    let config = ServerConfig {
        batch_window: Duration::from_micros(window_us),
        max_batch,
        io_timeout: Some(Duration::from_secs(60)),
    };
    let handle = serve(
        listener,
        vec![TenantConfig {
            name: tenant.clone(),
            store,
            max_pending,
        }],
        config,
    )
    .unwrap_or_else(|e| {
        eprintln!("serve_front: cannot start server: {e}");
        exit(1)
    });
    // The sentinel line the load generator / CI smoke step waits for.
    println!("listening on {}", handle.addr());
    println!(
        "tenant '{tenant}', batch window {window_us}us, max batch {max_batch}, \
         max pending {max_pending}"
    );
    loop {
        std::thread::park();
    }
}
