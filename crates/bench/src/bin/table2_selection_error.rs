//! Table 2: selection error when using each embedding distance measure to
//! pick the more stable of two dimension-precision configurations
//! (evaluated per seed, averaged, as in Section 5.2).

use embedstab_bench::{config_points_per_seed, rows_for_algo, standard_rows};
use embedstab_core::measures::MeasureKind;
use embedstab_core::selection::pairwise_selection;
use embedstab_core::stats;
use embedstab_pipeline::report::{num, print_table};
use embedstab_pipeline::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = standard_rows(scale, &["sst2", "subj", "ner"]);
    let algos = ["CBOW", "GloVe", "MC"];
    let tasks = ["sst2", "subj", "ner"];

    println!("\n=== Table 2: pairwise dimension-precision selection error ===");
    let mut header: Vec<String> = vec!["measure".into()];
    for task in tasks {
        for algo in algos {
            header.push(format!("{task}/{algo}"));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Vec::new();
    for kind in MeasureKind::ALL {
        let mut line = vec![kind.name().to_string()];
        for task in tasks {
            for algo in algos {
                let sub = rows_for_algo(&rows[task], algo);
                let errs: Vec<f64> = config_points_per_seed(&sub, kind)
                    .iter()
                    .map(|pts| pairwise_selection(pts).error_rate)
                    .collect();
                line.push(if errs.is_empty() {
                    "n/a".into()
                } else {
                    num(stats::mean(&errs), 2)
                });
            }
        }
        table.push(line);
    }
    print_table(&header_refs, &table);
    println!("\nPaper shape: EIS and 1-k-NN have the lowest error rates (0.11-0.24 in");
    println!("the paper); the weaker measures run up to ~3x higher.");
}
