//! Fleet coordinator: the machine-spanning big sibling of `coordinator`.
//!
//! ```text
//! fleet_coordinator --shards 8 --bind 0.0.0.0:7701 \
//!     --bin fig2_memory_tradeoff --scale paper \
//!     --cache-dir pair-cache --world-cache world-cache [-- extra args...]
//! ```
//!
//! Where `coordinator` spawns shard subprocesses on this box, this binary
//! serves the shard work queue over TCP to `fleet_worker` processes on
//! **any** machine:
//!
//! 1. builds (or loads) the world exactly once through the on-disk world
//!    cache — workers then pull that exact file by its content-addressed
//!    key instead of rebuilding;
//! 2. serves leases with heartbeat timeouts: a worker that dies or hangs
//!    mid-slice has its slice re-dispatched (capped backoff, bounded
//!    attempts), and row files are committed only on completion, so the
//!    merged output is bitwise identical to an unsharded run no matter
//!    how many workers died along the way;
//! 3. fans committed shard rows in through the same validated merge as
//!    `coordinator`, writing `results/<stem>.merged.jsonl`.
//!
//! Exits 0 with everything merged, 1 when a slice exhausts its dispatch
//! attempts (the fleet failed), 2 on usage errors.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use embedstab_bench::{clean_stale_shard_rows, merge_fleet_results, scale_tag};
use embedstab_fleet::queue::QueueConfig;
use embedstab_fleet::wire::FleetSpec;
use embedstab_fleet::{run_coordinator, CoordinatorConfig, FleetError};
use embedstab_pipeline::{CacheStore, Scale, World, WorldCache};

const RESULTS_DIR: &str = "results";

struct Args {
    shards: u32,
    bind: String,
    bin: String,
    cache_dir: PathBuf,
    world_cache: PathBuf,
    lease_timeout_ms: u64,
    max_attempts: u32,
    io_timeout_secs: u64,
    linger_ms: u64,
    extra: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut out = Args {
        shards: 0,
        bind: "127.0.0.1:0".to_string(),
        bin: "fig2_memory_tradeoff".to_string(),
        cache_dir: PathBuf::from("pair-cache"),
        world_cache: PathBuf::from("world-cache"),
        lease_timeout_ms: 30_000,
        max_attempts: 5,
        io_timeout_secs: 120,
        linger_ms: 1_000,
        extra: Vec::new(),
    };
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                out.shards = next(&mut args, "--shards")
                    .parse()
                    .unwrap_or_else(|_| usage("--shards needs a positive integer"));
            }
            "--bind" => out.bind = next(&mut args, "--bind"),
            "--bin" => out.bin = next(&mut args, "--bin"),
            "--cache-dir" => out.cache_dir = PathBuf::from(next(&mut args, "--cache-dir")),
            "--world-cache" => out.world_cache = PathBuf::from(next(&mut args, "--world-cache")),
            "--lease-timeout-ms" => {
                out.lease_timeout_ms = next(&mut args, "--lease-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| usage("--lease-timeout-ms needs milliseconds"));
            }
            "--max-attempts" => {
                out.max_attempts = next(&mut args, "--max-attempts")
                    .parse()
                    .unwrap_or_else(|_| usage("--max-attempts needs a positive integer"));
            }
            "--io-timeout-secs" => {
                out.io_timeout_secs = next(&mut args, "--io-timeout-secs")
                    .parse()
                    .unwrap_or_else(|_| usage("--io-timeout-secs needs seconds (0 = none)"));
            }
            "--linger-ms" => {
                out.linger_ms = next(&mut args, "--linger-ms")
                    .parse()
                    .unwrap_or_else(|_| usage("--linger-ms needs milliseconds"));
            }
            // --scale is read by Scale::from_args from the raw argv; keep
            // it out of the forwarded extras to avoid passing it twice.
            "--scale" => {
                let _ = next(&mut args, "--scale");
            }
            "--" => {
                out.extra.extend(args.by_ref());
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if out.shards == 0 {
        usage("missing --shards N (N >= 1)");
    }
    if out.bin.contains('/') || out.bin.contains('\\') {
        usage("--bin must be a bare binary name (workers resolve it in their own bin dir)");
    }
    out
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: fleet_coordinator --shards N [--bind host:port] [--bin name]\n\
         \x20        [--scale tiny|small|paper] [--cache-dir <dir>] [--world-cache <dir>]\n\
         \x20        [--lease-timeout-ms MS] [--max-attempts N] [--io-timeout-secs S]\n\
         \x20        [--linger-ms MS] [-- args forwarded to every worker's shards]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let args = parse_args();
    let scale = Scale::from_args();
    let tag = scale_tag(scale);
    std::fs::create_dir_all(RESULTS_DIR)
        .unwrap_or_else(|e| panic!("cannot create {RESULTS_DIR}: {e}"));
    clean_stale_shard_rows(Path::new(RESULTS_DIR), args.shards as usize);

    // The world is built (or loaded) exactly once, here; its cache file is
    // the content-addressed artifact every worker pulls.
    let t0 = Instant::now();
    let params = scale.params();
    let world = World::load_or_build(&params, 0, &args.world_cache).unwrap_or_else(|e| {
        panic!(
            "cannot open world cache {}: {e}",
            args.world_cache.display()
        )
    });
    drop(world);
    let world_file = WorldCache::open(&args.world_cache)
        .expect("world cache just opened")
        .path(&params, 0);
    let world_key = world_file
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or_else(|| panic!("world cache path {} has no name", world_file.display()))
        .to_string();
    assert!(
        world_file.exists(),
        "world cache file {} missing after build; workers would have nothing to pull",
        world_file.display()
    );
    eprintln!(
        "[fleet_coordinator] world ready in {:.1}s (key '{world_key}')",
        t0.elapsed().as_secs_f64()
    );

    let store = CacheStore::open(&args.world_cache, &args.cache_dir)
        .unwrap_or_else(|e| panic!("cannot open cache store: {e}"));
    let listener =
        TcpListener::bind(&args.bind).unwrap_or_else(|e| panic!("cannot bind {}: {e}", args.bind));
    let addr = listener
        .local_addr()
        .expect("bound listener has an address");
    eprintln!(
        "[fleet_coordinator] serving {} slice(s) of '{}' (scale {tag}) on {addr}",
        args.shards, args.bin
    );

    let spec = FleetSpec {
        bin: args.bin,
        scale: tag.to_string(),
        shards: args.shards,
        world_key,
        extra: args.extra,
    };
    let mut config = CoordinatorConfig::new(spec, PathBuf::from(RESULTS_DIR));
    config.queue = QueueConfig {
        lease_timeout_ms: args.lease_timeout_ms,
        max_attempts: args.max_attempts,
        ..QueueConfig::default()
    };
    config.io_timeout =
        (args.io_timeout_secs > 0).then(|| Duration::from_secs(args.io_timeout_secs));
    config.linger = Duration::from_millis(args.linger_ms);

    // The fleet crate never reads a clock (lint-enforced); this epoch
    // closure is the coordinator's injected time source.
    let epoch = Instant::now();
    let now_ms = move || u64::try_from(epoch.elapsed().as_millis()).unwrap_or(u64::MAX);
    match run_coordinator(listener, store, config, now_ms) {
        Ok(()) => {}
        Err(FleetError::Exhausted { slice, attempts }) => {
            eprintln!(
                "[fleet_coordinator] FLEET FAILED: slice {slice} burned {attempts} dispatch \
                 attempt(s); not merging"
            );
            std::process::exit(1);
        }
        Err(e) => panic!("fleet coordinator failed: {e}"),
    }

    let merged = merge_fleet_results(Path::new(RESULTS_DIR), args.shards as usize)
        .unwrap_or_else(|e| panic!("merging shard files failed: {e}"));
    if merged.is_empty() {
        eprintln!("[fleet_coordinator] warning: workers pushed no row files; nothing to merge");
        return;
    }
    for (_, out, rows) in merged {
        eprintln!(
            "[fleet_coordinator] merged {} shard(s) -> {} ({} rows)",
            args.shards,
            out.display(),
            rows
        );
    }
    eprintln!(
        "[fleet_coordinator] done in {:.1}s total",
        t0.elapsed().as_secs_f64()
    );
}
