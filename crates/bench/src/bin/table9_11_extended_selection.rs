//! Tables 9, 10, and 11 (Appendix D.5): the extended selection results —
//! Spearman/selection/oracle-gap on MR and MPQA (Table 9), and the
//! worst-case variants of the pairwise and budget selection evaluations
//! (Tables 10 and 11) on SST-2, Subj, and NER.

use embedstab_bench::{config_points_per_seed, rows_for_algo, spearman_for, standard_rows};
use embedstab_core::measures::MeasureKind;
use embedstab_core::selection::{
    budget_baseline, budget_selection, pairwise_selection, BudgetBaseline,
};
use embedstab_core::stats;
use embedstab_pipeline::report::{num, print_table};
use embedstab_pipeline::{Row, Scale};

fn main() {
    let scale = Scale::from_args();
    let rows = standard_rows(scale, &["sst2", "subj", "ner", "mr", "mpqa"]);
    let algos = ["CBOW", "GloVe", "MC"];

    // Table 9: MR and MPQA versions of Tables 1, 2, 3.
    let t9 = ["mr", "mpqa"];
    println!("\n=== Table 9a: Spearman correlations (MR, MPQA) ===");
    print_measure_table(&rows, &t9, &algos, |sub, kind| {
        spearman_for(sub, kind)
            .map(|r| num(r, 2))
            .unwrap_or_else(|| "n/a".into())
    });
    println!("\n=== Table 9b: pairwise selection error (MR, MPQA) ===");
    print_measure_table(&rows, &t9, &algos, |sub, kind| {
        mean_over_seeds(sub, kind, |pts| pairwise_selection(pts).error_rate, 1.0)
    });
    println!("\n=== Table 9c: mean oracle gap under memory budgets (MR, MPQA, abs %) ===");
    print_measure_table(&rows, &t9, &algos, |sub, kind| {
        mean_over_seeds(sub, kind, |pts| budget_selection(pts).mean_gap, 100.0)
    });

    // Table 10: worst-case pairwise selection increase (abs %).
    let t_main = ["sst2", "subj", "ner"];
    println!("\n=== Table 10: worst-case pairwise instability increase (abs %) ===");
    print_measure_table(&rows, &t_main, &algos, |sub, kind| {
        worst_over_seeds(sub, kind, |pts| pairwise_selection(pts).worst_case_increase)
    });

    // Table 11: worst-case budget gap (abs %), with naive baselines.
    println!("\n=== Table 11: worst-case oracle gap under memory budgets (abs %) ===");
    print_measure_table(&rows, &t_main, &algos, |sub, kind| {
        worst_over_seeds(sub, kind, |pts| budget_selection(pts).worst_gap)
    });
    for (name, baseline) in [
        ("High Precision", BudgetBaseline::HighPrecision),
        ("Low Precision", BudgetBaseline::LowPrecision),
    ] {
        let mut line = vec![name.to_string()];
        for task in t_main {
            for algo in algos {
                let sub = rows_for_algo(&rows[task], algo);
                line.push(worst_over_seeds(&sub, MeasureKind::Eis, |pts| {
                    budget_baseline(pts, baseline).worst_gap
                }));
            }
        }
        println!("  baseline {}", line.join("  "));
    }
    println!("\nPaper shape: EIS and 1-k-NN remain the top performers in the worst");
    println!("case as well (Appendix D.5).");
}

fn mean_over_seeds(
    sub: &[Row],
    kind: MeasureKind,
    f: impl Fn(&[embedstab_core::selection::ConfigPoint]) -> f64,
    scale_by: f64,
) -> String {
    let vals: Vec<f64> = config_points_per_seed(sub, kind)
        .iter()
        .map(|pts| scale_by * f(pts))
        .collect();
    if vals.is_empty() {
        "n/a".into()
    } else {
        num(stats::mean(&vals), 2)
    }
}

fn worst_over_seeds(
    sub: &[Row],
    kind: MeasureKind,
    f: impl Fn(&[embedstab_core::selection::ConfigPoint]) -> f64,
) -> String {
    let vals: Vec<f64> = config_points_per_seed(sub, kind)
        .iter()
        .map(|pts| 100.0 * f(pts))
        .collect();
    if vals.is_empty() {
        "n/a".into()
    } else {
        num(vals.iter().cloned().fold(0.0f64, f64::max), 2)
    }
}

fn print_measure_table(
    rows: &std::collections::BTreeMap<String, Vec<Row>>,
    tasks: &[&str],
    algos: &[&str],
    cell: impl Fn(&[Row], MeasureKind) -> String,
) {
    let mut header: Vec<String> = vec!["measure".into()];
    for task in tasks {
        for algo in algos {
            header.push(format!("{task}/{algo}"));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Vec::new();
    for kind in MeasureKind::ALL {
        let mut line = vec![kind.name().to_string()];
        for task in tasks {
            for algo in algos {
                let sub = rows_for_algo(&rows[*task], algo);
                line.push(cell(&sub, kind));
            }
        }
        table.push(line);
    }
    print_table(&header_refs, &table);
}
