//! Table 1: Spearman correlation between each embedding distance measure
//! and downstream prediction disagreement, across the dimension-precision
//! grid, for SST-2, Subj, and NER x CBOW/GloVe/MC.

use embedstab_bench::{rows_for_algo, spearman_for, standard_rows};
use embedstab_core::measures::MeasureKind;
use embedstab_pipeline::report::{num, print_table};
use embedstab_pipeline::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = standard_rows(scale, &["sst2", "subj", "ner"]);
    let algos = ["CBOW", "GloVe", "MC"];
    let tasks = ["sst2", "subj", "ner"];

    println!("\n=== Table 1: Spearman correlation (measure vs downstream disagreement) ===");
    let mut header: Vec<String> = vec!["measure".into()];
    for task in tasks {
        for algo in algos {
            header.push(format!("{task}/{algo}"));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Vec::new();
    for kind in MeasureKind::ALL {
        let mut line = vec![kind.name().to_string()];
        for task in tasks {
            for algo in algos {
                let sub = rows_for_algo(&rows[task], algo);
                let rho = spearman_for(&sub, kind);
                line.push(rho.map(|r| num(r, 2)).unwrap_or_else(|| "n/a".into()));
            }
        }
        table.push(line);
    }
    print_table(&header_refs, &table);
    println!("\nPaper shape: Eigenspace Instability and 1-k-NN dominate (>=0.68 in the");
    println!("paper); Semantic Displacement / PIP / 1-Eigenspace Overlap are weaker.");
}
