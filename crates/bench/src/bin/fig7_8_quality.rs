//! Figures 7 and 8 (Appendix D.2): quality-memory and quality-stability
//! tradeoffs for the sentiment tasks (Fig. 7) and NER (Fig. 8), CBOW and
//! MC embeddings.

use embedstab_bench::{aggregate, standard_rows};
use embedstab_pipeline::report::{pct, print_table};
use embedstab_pipeline::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = standard_rows(scale, &["sst2", "subj", "mr", "mpqa", "ner"]);

    println!("\n=== Figures 7/8: quality vs memory and quality vs stability ===");
    for task in ["sst2", "subj", "mr", "mpqa", "ner"] {
        println!(
            "\n--- {task} (quality = {}) ---",
            if task == "ner" {
                "micro-F1"
            } else {
                "accuracy"
            }
        );
        let mut table = Vec::new();
        for a in aggregate(&rows[task])
            .iter()
            .filter(|a| a.algo == "CBOW" || a.algo == "MC")
        {
            table.push(vec![
                a.algo.clone(),
                a.bits.to_string(),
                a.dim.to_string(),
                a.memory.to_string(),
                pct(a.mean_quality),
                pct(a.mean_di),
            ]);
        }
        print_table(
            &["algo", "bits", "dim", "bits/word", "quality%", "disagree%"],
            &table,
        );
    }
    println!("\nPaper shape: quality rises with memory and is driven mostly by the");
    println!("dimension, while instability is driven more by the precision; for NER");
    println!("quality and stability correlate clearly (Appendix D.2).");
}
