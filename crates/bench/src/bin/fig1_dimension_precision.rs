//! Figure 1: downstream instability of sentiment (SST-2) and NER tasks
//! under varying dimension (top row, at full precision) and varying
//! precision (bottom row, at the mid dimension) for CBOW, GloVe, and MC.

use embedstab_bench::{aggregate, standard_rows};
use embedstab_pipeline::report::{pct, print_table};
use embedstab_pipeline::Scale;

fn main() {
    let scale = Scale::from_args();
    let params = scale.params();
    let rows = standard_rows(scale, &["sst2", "ner"]);
    let mid_dim = params.dims[params.dims.len() / 2];

    for task in ["sst2", "ner"] {
        let agg = aggregate(&rows[task]);
        println!("\n=== Figure 1 ({task}): % disagreement vs dimension (b=32) ===");
        let mut table = Vec::new();
        for a in agg.iter().filter(|a| a.bits == 32) {
            table.push(vec![
                a.algo.clone(),
                a.dim.to_string(),
                pct(a.mean_di),
                pct(a.std_di),
            ]);
        }
        print_table(&["algo", "dim", "disagree%", "std%"], &table);

        println!("\n=== Figure 1 ({task}): % disagreement vs precision (dim={mid_dim}) ===");
        let mut table = Vec::new();
        for a in agg.iter().filter(|a| a.dim == mid_dim) {
            table.push(vec![
                a.algo.clone(),
                a.bits.to_string(),
                pct(a.mean_di),
                pct(a.std_di),
            ]);
        }
        print_table(&["algo", "bits", "disagree%", "std%"], &table);
    }
    println!("\nPaper shape: instability decreases as dimension or precision grows,");
    println!("with compression below 4 bits hurting most (paper Fig. 1).");
}
