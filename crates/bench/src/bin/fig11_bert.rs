//! Figure 11 (Appendix D.7): downstream instability of mini-BERT
//! contextual embeddings on the four sentiment tasks, varying (a) the
//! transformer output dimension and (b) the precision of the extracted
//! features.

use embedstab_core::disagreement;
use embedstab_corpus::Corpus;
use embedstab_ctx::{BertConfig, MiniBert, MlmTrainConfig};
use embedstab_downstream::models::{LogReg, TrainSpec};
use embedstab_downstream::tasks::sentiment::SentimentExample;
use embedstab_linalg::Mat;
use embedstab_pipeline::report::{pct, print_table};
use embedstab_pipeline::{Scale, World};
use embedstab_quant::{optimal_clip, quantize_value, Precision};

fn main() {
    let scale = Scale::from_args();
    let params = scale.params();
    let (dims, mlm_tokens, epochs) = match scale {
        Scale::Tiny => (vec![8, 16], 6_000usize, 1usize),
        Scale::Small => (vec![8, 16, 32, 64], 40_000, 2),
        Scale::Paper => (vec![16, 32, 64, 128, 256], 200_000, 2),
    };
    let base_dim = dims[dims.len() / 2];
    let world = World::build(&params, 0);
    let sub17 = subsample(&world.pair.corpus17, mlm_tokens);
    let sub18 = subsample(&world.pair.corpus18, mlm_tokens);

    println!("\n=== Figure 11a: disagreement vs transformer output dimension ===");
    let mut dim_table = Vec::new();
    let mut berts: Vec<(usize, MiniBert, MiniBert)> = Vec::new();
    for &dim in &dims {
        let heads = if dim >= 16 { 4 } else { 2 };
        let mk = |seed: u64| {
            MiniBert::new(&BertConfig {
                vocab_size: params.vocab_size,
                dim,
                heads,
                layers: 3,
                max_len: 24,
                ffn_mult: 2,
                seed,
            })
        };
        let mut b17 = mk(0);
        let mut b18 = mk(0);
        b17.train_mlm(
            &sub17,
            &MlmTrainConfig {
                epochs,
                seed: 0,
                ..Default::default()
            },
        );
        b18.train_mlm(
            &sub18,
            &MlmTrainConfig {
                epochs,
                seed: 0,
                ..Default::default()
            },
        );
        for ds in &world.sentiment {
            let di = sentiment_disagreement(&b17, &b18, &ds.train, &ds.test, Precision::FULL);
            dim_table.push(vec![ds.name.clone(), dim.to_string(), pct(di)]);
        }
        berts.push((dim, b17, b18));
    }
    print_table(&["task", "dim", "disagree%"], &dim_table);

    println!("\n=== Figure 11b: disagreement vs feature precision (dim={base_dim}) ===");
    let (_, b17, b18) = berts
        .iter()
        .find(|(d, _, _)| *d == base_dim)
        .expect("base dim trained");
    let mut prec_table = Vec::new();
    let precisions = match scale {
        Scale::Tiny => vec![Precision::new(1), Precision::new(4), Precision::FULL],
        _ => Precision::SWEEP.to_vec(),
    };
    for &prec in &precisions {
        for ds in &world.sentiment {
            let di = sentiment_disagreement(b17, b18, &ds.train, &ds.test, prec);
            prec_table.push(vec![ds.name.clone(), prec.bits().to_string(), pct(di)]);
        }
    }
    print_table(&["task", "bits", "disagree%"], &prec_table);
    println!("\nPaper shape: higher dimension/precision tend to be more stable, but the");
    println!("trends are noisier than for pre-trained word embeddings (Section 6.2).");
}

/// Keeps roughly the first `n_tokens` tokens (the paper pre-trains on a
/// 10% Wikipedia subsample).
fn subsample(corpus: &Corpus, n_tokens: usize) -> Corpus {
    let mut docs = Vec::new();
    let mut total = 0usize;
    for d in corpus.docs() {
        if total >= n_tokens {
            break;
        }
        total += d.len();
        docs.push(d.clone());
    }
    Corpus::from_docs(docs)
}

/// Trains the paired linear classifiers on (optionally quantized) BERT
/// features and returns their test disagreement.
fn sentiment_disagreement(
    b17: &MiniBert,
    b18: &MiniBert,
    train: &[SentimentExample],
    test: &[SentimentExample],
    precision: Precision,
) -> f64 {
    let f17_train = features(b17, train);
    let f17_test = features(b17, test);
    let f18_train = features(b18, train);
    let f18_test = features(b18, test);
    // Quantize features with the clip threshold from the '17 model, as the
    // embeddings pipeline does.
    let (f17_train, clip) = quantize_features(f17_train, precision, None);
    let (f17_test, _) = quantize_features(f17_test, precision, clip);
    let (f18_train, _) = quantize_features(f18_train, precision, clip);
    let (f18_test, _) = quantize_features(f18_test, precision, clip);
    let labels: Vec<bool> = train.iter().map(|e| e.label).collect();
    let spec = TrainSpec {
        lr: 0.01,
        epochs: 30,
        ..Default::default()
    };
    let m17 = LogReg::train(&f17_train, &labels, &spec);
    let m18 = LogReg::train(&f18_train, &labels, &spec);
    disagreement(&m17.predict_all(&f17_test), &m18.predict_all(&f18_test))
}

fn features(bert: &MiniBert, examples: &[SentimentExample]) -> Mat {
    let d = bert.config().dim;
    let max_len = bert.config().max_len;
    let mut out = Mat::zeros(examples.len(), d);
    for (i, ex) in examples.iter().enumerate() {
        if ex.tokens.is_empty() {
            continue;
        }
        let tokens = &ex.tokens[..ex.tokens.len().min(max_len)];
        out.row_mut(i)
            .copy_from_slice(&bert.sentence_embedding(tokens));
    }
    out
}

fn quantize_features(mut f: Mat, precision: Precision, clip: Option<f64>) -> (Mat, Option<f64>) {
    if precision.is_full() {
        return (f, None);
    }
    let clip = clip.unwrap_or_else(|| optimal_clip(f.as_slice(), precision));
    for v in f.as_mut_slice() {
        *v = quantize_value(*v, clip, precision);
    }
    (f, Some(clip))
}
