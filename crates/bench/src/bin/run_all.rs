//! Runs every table/figure reproduction binary in sequence — the
//! one-command analogue of the paper artifact's `run_analysis.sh`.
//!
//! Usage: `cargo run --release -p embedstab-bench --bin run_all -- --scale tiny`
//!
//! Row caches in `results/` are shared, so the expensive grids are built
//! once (by the first binary that needs them) and reused by the rest.

use std::process::Command;

const BINARIES: &[&str] = &[
    // Theory first: cheap and self-contained.
    "prop1_validation",
    // Main-body figures and tables (share the standard row cache).
    "fig1_dimension_precision",
    "fig2_memory_tradeoff",
    "table1_spearman",
    "table2_selection_error",
    "table3_oracle_gap",
    // Appendix analyses on the same rows.
    "fig4_6_sentiment_grids",
    "fig7_8_quality",
    "fig9_measure_scatter",
    "table9_11_extended_selection",
    // Independent substrates.
    "fig3_kge",
    "fig10_kge_thresholds",
    "fig11_bert",
    "fig12_fasttext",
    "fig13_complex_models",
    "table13_randomness",
    "fig14_seeds_finetune",
    "fig15_learning_rate",
    // Hyperparameter sweep last (reuses rows + rebuilds a 2-algo grid).
    "table8_hyperparams",
];

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let mut failures = Vec::new();
    for (i, bin) in BINARIES.iter().enumerate() {
        println!("\n================================================================");
        println!("[{}/{}] {}", i + 1, BINARIES.len(), bin);
        println!("================================================================");
        let status = Command::new(
            std::env::current_exe()
                .expect("self path")
                .parent()
                .expect("bin dir")
                .join(bin),
        )
        .args(&passthrough)
        .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("[run_all] {bin} exited with {s}");
                failures.push(*bin);
            }
            Err(e) => {
                eprintln!("[run_all] could not launch {bin}: {e}");
                failures.push(*bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\n[run_all] all {} artifacts regenerated", BINARIES.len());
    } else {
        eprintln!("\n[run_all] failures: {failures:?}");
        std::process::exit(1);
    }
}
