//! Table 8 (Appendix D.3): tuning the measure hyperparameters — the
//! eigenvalue exponent alpha of the eigenspace instability measure and the
//! k of the k-NN measure — by average Spearman correlation with downstream
//! disagreement across tasks (CBOW and MC, as in the paper).

use std::collections::BTreeMap;

use embedstab_bench::{setup, standard_rows};
use embedstab_core::measures::{EisMeasure, KnnMeasure};
use embedstab_core::stats;
use embedstab_embeddings::Algo;
use embedstab_linalg::Svd;
use embedstab_pipeline::report::{num, print_table};
use embedstab_pipeline::Scale;

fn main() {
    let scale = Scale::from_args();
    let params = scale.params();
    let rows = standard_rows(scale, &["sst2", "subj", "ner"]);
    let exp = setup(scale, &[Algo::Cbow, Algo::Mc]);
    let algos = [Algo::Cbow, Algo::Mc];
    let top_m = params.top_m;

    // DI lookup per (task, algo, dim, bits, seed).
    let di: BTreeMap<(String, String, usize, u8, u64), f64> = rows
        .iter()
        .flat_map(|(task, rs)| {
            rs.iter().map(move |r| {
                (
                    (task.clone(), r.algo.clone(), r.dim, r.bits, r.seed),
                    r.disagreement,
                )
            })
        })
        .collect();

    // Shared per-config left singular bases and quantized pairs (the
    // expensive part, computed once for the whole sweep).
    eprintln!("[table8] computing per-config singular bases...");
    let mut bases = Vec::new();
    for &algo in &algos {
        for &seed in &params.seeds {
            for &dim in &params.dims {
                for &prec in &params.precisions {
                    let (q17, q18) = exp.grid.quantized_pair(algo, dim, seed, prec);
                    let m = top_m.min(q17.vocab_size());
                    let q17 = q17.top_rows(m);
                    let q18 = q18.top_rows(m);
                    let ux = q17.mat().svd().u_rank(1e-10);
                    let uy = q18.mat().svd().u_rank(1e-10);
                    bases.push((algo, seed, dim, prec, q17, q18, ux, uy));
                }
            }
        }
    }
    // Reference SVDs per (algo, seed), shared across the alpha sweep.
    let mut ref_svds: BTreeMap<(Algo, u64), (Svd, Svd, usize)> = BTreeMap::new();
    for &algo in &algos {
        for &seed in &params.seeds {
            let (e17, e18) = exp.grid.pair(algo, params.max_dim(), seed);
            let m = top_m.min(e17.vocab_size());
            ref_svds.insert(
                (algo, seed),
                (e17.top_rows(m).mat().svd(), e18.top_rows(m).mat().svd(), m),
            );
        }
    }

    // Alpha sweep: Spearman of EIS_alpha vs DI, averaged over task x algo.
    println!("\n=== Table 8a: alpha for the eigenspace instability measure ===");
    let mut alpha_table = Vec::new();
    for alpha in 0..=8 {
        let alpha = alpha as f64;
        let eis: BTreeMap<(Algo, u64), EisMeasure> = ref_svds
            .iter()
            .map(|(&key, (s17, s18, m))| {
                (key, EisMeasure::from_reference_svds(s17, s18, *m, alpha))
            })
            .collect();
        let mut rhos = Vec::new();
        for task in rows.keys() {
            for &algo in &algos {
                let mut xs = Vec::new();
                let mut ys = Vec::new();
                for (a, s, dim, prec, _q17, _q18, ux, uy) in &bases {
                    if *a != algo {
                        continue;
                    }
                    let key = (task.clone(), algo.name().to_string(), *dim, prec.bits(), *s);
                    let Some(&d) = di.get(&key) else { continue };
                    xs.push(eis[&(algo, *s)].distance_from_bases(ux, uy));
                    ys.push(d);
                }
                if xs.len() >= 3 {
                    rhos.push(stats::spearman(&xs, &ys));
                }
            }
        }
        alpha_table.push(vec![num(alpha, 0), num(stats::mean(&rhos), 3)]);
    }
    print_table(&["alpha", "mean Spearman"], &alpha_table);

    // k sweep for the k-NN measure.
    println!("\n=== Table 8b: k for the k-NN measure ===");
    let mut k_table = Vec::new();
    for k in [1usize, 2, 5, 10, 50, 100] {
        let mut rhos = Vec::new();
        for task in rows.keys() {
            for &algo in &algos {
                let mut xs = Vec::new();
                let mut ys = Vec::new();
                for (a, s, dim, prec, q17, q18, _ux, _uy) in &bases {
                    if *a != algo {
                        continue;
                    }
                    let key = (task.clone(), algo.name().to_string(), *dim, prec.bits(), *s);
                    let Some(&d) = di.get(&key) else { continue };
                    let knn = KnnMeasure::new(k, params.knn_queries.min(200), *s);
                    xs.push(1.0 - knn.overlap(q17, q18));
                    ys.push(d);
                }
                if xs.len() >= 3 {
                    rhos.push(stats::spearman(&xs, &ys));
                }
            }
        }
        k_table.push(vec![k.to_string(), num(stats::mean(&rhos), 3)]);
    }
    print_table(&["k", "mean Spearman"], &k_table);
    println!("\nPaper shape: correlation jumps once alpha >= 2 and peaks near alpha=3;");
    println!("small k (2-10) beats very large k (Appendix D.3).");
}
