//! Fleet worker: connects to a `fleet_coordinator`, pulls caches by
//! fingerprint, and runs leased shard slices until the fleet drains.
//!
//! ```text
//! fleet_worker --addr host:7701 [--name w1] [--workdir dir]
//!     [--cache-dir pair-cache] [--world-cache world-cache]
//!     [--bin-dir dir] [--heartbeat-ms MS] [--connect-retries N]
//! ```
//!
//! The worker needs no pre-staged data: the `Welcome` names the world
//! cache key, the worker pulls it (and any pair-cache entries for that
//! world) chunk by chunk with receipt-time verification, then loops
//! leasing slices. Each slice runs the spec's shard binary — resolved in
//! `--bin-dir`, defaulting to this executable's own directory — in the
//! workdir, and the produced `results/*.shard<i>of<n>.jsonl` files are
//! streamed back before the slice is declared complete.
//!
//! Exits 0 when the coordinator drains the fleet, 2 on errors, 43 when
//! the `FLEET_FAIL_ONCE` fault injection fires (see `embedstab_fleet`).

use std::path::PathBuf;
use std::time::Duration;

use embedstab_fleet::{run_worker, WorkerConfig};

fn parse_args() -> WorkerConfig {
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .unwrap_or_else(|| PathBuf::from("."));
    let mut out = WorkerConfig {
        addr: String::new(),
        name: format!("worker-{}", std::process::id()),
        bin_dir: exe_dir,
        workdir: PathBuf::from("."),
        cache_dir: PathBuf::from("pair-cache"),
        world_cache: PathBuf::from("world-cache"),
        poll: Duration::from_millis(25),
        heartbeat: Duration::from_millis(2_000),
        connect_retries: 10,
        connect_backoff: Duration::from_millis(300),
        io_timeout: Some(Duration::from_secs(120)),
    };
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
    };
    let millis = |v: String, flag: &str| {
        Duration::from_millis(
            v.parse()
                .unwrap_or_else(|_| usage(&format!("{flag} needs milliseconds"))),
        )
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => out.addr = next(&mut args, "--addr"),
            "--name" => out.name = next(&mut args, "--name"),
            "--bin-dir" => out.bin_dir = PathBuf::from(next(&mut args, "--bin-dir")),
            "--workdir" => out.workdir = PathBuf::from(next(&mut args, "--workdir")),
            "--cache-dir" => out.cache_dir = PathBuf::from(next(&mut args, "--cache-dir")),
            "--world-cache" => out.world_cache = PathBuf::from(next(&mut args, "--world-cache")),
            "--poll-ms" => out.poll = millis(next(&mut args, "--poll-ms"), "--poll-ms"),
            "--heartbeat-ms" => {
                out.heartbeat = millis(next(&mut args, "--heartbeat-ms"), "--heartbeat-ms");
            }
            "--connect-retries" => {
                out.connect_retries = next(&mut args, "--connect-retries")
                    .parse()
                    .unwrap_or_else(|_| usage("--connect-retries needs a count"));
            }
            "--connect-backoff-ms" => {
                out.connect_backoff = millis(
                    next(&mut args, "--connect-backoff-ms"),
                    "--connect-backoff-ms",
                );
            }
            "--io-timeout-secs" => {
                let secs: u64 = next(&mut args, "--io-timeout-secs")
                    .parse()
                    .unwrap_or_else(|_| usage("--io-timeout-secs needs seconds (0 = none)"));
                out.io_timeout = (secs > 0).then(|| Duration::from_secs(secs));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if out.addr.is_empty() {
        usage("missing --addr host:port");
    }
    out
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: fleet_worker --addr host:port [--name s] [--bin-dir dir] [--workdir dir]\n\
         \x20        [--cache-dir <dir>] [--world-cache <dir>] [--poll-ms MS]\n\
         \x20        [--heartbeat-ms MS] [--connect-retries N] [--connect-backoff-ms MS]\n\
         \x20        [--io-timeout-secs S]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let config = parse_args();
    match run_worker(&config) {
        Ok(report) => {
            eprintln!(
                "[fleet_worker] drained: completed {:?}, pulled {} cache file(s)",
                report.completed,
                report.pulled.len()
            );
        }
        Err(e) => {
            eprintln!("[fleet_worker] error: {e}");
            std::process::exit(2);
        }
    }
}
