//! Load generator for the serving front-end: drives a running
//! `serve_front` with a deterministic query mix and writes
//! `BENCH_serve.json` with throughput and latency quantiles.
//!
//! ```text
//! cargo run --release -p embedstab_bench --bin serve_loadgen -- \
//!     --addr 127.0.0.1:7878 --connections 4 --requests 250
//! ```
//!
//! Normal mode sends only well-formed queries (an 8-id lookup batch, with
//! every 4th request a `k = 5` nearest-neighbor batch instead), learned
//! from the server's own `Info` response, so **any** error response is a
//! server bug and the process exits 1. Latencies are recorded per request
//! into per-connection [`LatencyHistogram`]s (microseconds) and merged —
//! order-independent, so the report is deterministic for a given set of
//! observed latencies.
//!
//! `--fuzz` inverts the contract: every request is malformed (random
//! bytes, truncated payloads, out-of-range ids, wrong-dimension queries,
//! `k = 0`, empty batches, unknown tenants, bad version/op bytes) and the
//! process exits 1 if any of them gets an OK response — or if the server
//! stops answering, which is how a panic over there would show up here. A
//! well-formed probe after the storm double-checks the server survived.

use std::io::Write as _;
use std::net::TcpStream;
use std::process::exit;
use std::time::Instant;

use embedstab_core::stats::LatencyHistogram;
use embedstab_linalg::Mat;
use embedstab_serve::wire::{self, Request, Response};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    mode: String,
    addr: String,
    tenant: String,
    connections: usize,
    requests_per_connection: usize,
    total_requests: u64,
    ok_responses: u64,
    error_responses: u64,
    elapsed_seconds: f64,
    throughput_qps: f64,
    latency_us_p50: u64,
    latency_us_p99: u64,
    latency_us_p999: u64,
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("serve_loadgen: bad value '{v}' for {flag}");
            exit(2)
        }),
    }
}

struct WorkerResult {
    hist: LatencyHistogram,
    ok: u64,
    errors: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
    let tenant = flag_value(&args, "--tenant").unwrap_or_else(|| "default".into());
    let connections: usize = parse(&args, "--connections", 4);
    let requests: usize = parse(&args, "--requests", 250);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".into());
    let fuzz = args.iter().any(|a| a == "--fuzz");

    // Learn the served shape from the server itself.
    let mut probe = TcpStream::connect(&addr).unwrap_or_else(|e| {
        eprintln!("serve_loadgen: cannot connect to {addr}: {e}");
        exit(1)
    });
    let info = match wire::call(
        &mut probe,
        &Request::Info {
            tenant: tenant.clone(),
        },
    ) {
        Ok(Response::Info(info)) => info,
        Ok(other) => {
            eprintln!("serve_loadgen: Info request answered {other:?}");
            exit(1)
        }
        Err(e) => {
            eprintln!("serve_loadgen: Info request failed: {e}");
            exit(1)
        }
    };
    eprintln!(
        "server {addr}: tenant '{tenant}' v{} (vocab {}, dim {}, {} bits)",
        info.version, info.vocab_size, info.dim, info.precision_bits
    );
    drop(probe);

    let started = Instant::now();
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|conn| {
                let addr = addr.clone();
                let tenant = tenant.clone();
                scope.spawn(move || {
                    if fuzz {
                        fuzz_worker(&addr, &tenant, conn as u64, requests, &info)
                    } else {
                        load_worker(&addr, &tenant, conn as u64, requests, &info)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut hist = LatencyHistogram::new();
    let (mut ok, mut errors) = (0u64, 0u64);
    for r in &results {
        hist.merge(&r.hist);
        ok += r.ok;
        errors += r.errors;
    }
    let total = ok + errors;
    let report = Report {
        mode: if fuzz { "fuzz" } else { "load" }.into(),
        addr: addr.clone(),
        tenant: tenant.clone(),
        connections,
        requests_per_connection: requests,
        total_requests: total,
        ok_responses: ok,
        error_responses: errors,
        elapsed_seconds: elapsed,
        throughput_qps: if elapsed > 0.0 {
            total as f64 / elapsed
        } else {
            0.0
        },
        latency_us_p50: hist.quantile(0.50).unwrap_or(0),
        latency_us_p99: hist.quantile(0.99).unwrap_or(0),
        latency_us_p999: hist.quantile(0.999).unwrap_or(0),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json.as_bytes()).unwrap_or_else(|e| {
        eprintln!("serve_loadgen: cannot write {out}: {e}");
        exit(1)
    });
    println!(
        "{} requests in {:.2}s ({:.0} qps), p50 {}us p99 {}us p999 {}us, \
         {} ok / {} errors -> {out}",
        report.total_requests,
        report.elapsed_seconds,
        report.throughput_qps,
        report.latency_us_p50,
        report.latency_us_p99,
        report.latency_us_p999,
        report.ok_responses,
        report.error_responses,
    );

    if fuzz {
        // In fuzz mode every request was invalid: an OK response means the
        // server accepted garbage.
        if ok > 0 {
            eprintln!("serve_loadgen: FUZZ FAILURE: {ok} malformed request(s) answered OK");
            exit(1)
        }
        // And the server must have survived the storm.
        let mut probe = TcpStream::connect(&addr).unwrap_or_else(|e| {
            eprintln!("serve_loadgen: FUZZ FAILURE: server gone after fuzzing: {e}");
            exit(1)
        });
        match wire::call(
            &mut probe,
            &Request::LookupBatch {
                tenant: tenant.clone(),
                ids: vec![0],
            },
        ) {
            Ok(Response::Rows(_)) => println!("server survived the fuzz storm"),
            other => {
                eprintln!("serve_loadgen: FUZZ FAILURE: post-fuzz probe answered {other:?}");
                exit(1)
            }
        }
    } else if errors > 0 {
        eprintln!("serve_loadgen: FAILURE: {errors} well-formed request(s) answered with errors");
        exit(1)
    }
}

/// Well-formed deterministic mix: every 4th request a nearest-neighbor
/// batch (2 queries, k = 5), the rest 8-id lookups.
fn load_worker(
    addr: &str,
    tenant: &str,
    seed: u64,
    requests: usize,
    info: &wire::SnapshotInfo,
) -> WorkerResult {
    let mut stream = TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("serve_loadgen: worker cannot connect: {e}");
        exit(1)
    });
    stream.set_nodelay(true).ok();
    let mut rng = StdRng::seed_from_u64(0x10ad ^ seed);
    let vocab = info.vocab_size.max(1);
    let dim = info.dim as usize;
    let mut result = WorkerResult {
        hist: LatencyHistogram::new(),
        ok: 0,
        errors: 0,
    };
    for i in 0..requests {
        let req = if i % 4 == 3 {
            // Query vectors near real rows: random ids' worth of noise.
            let data: Vec<f64> = (0..2 * dim).map(|_| rng.random::<f64>() - 0.5).collect();
            Request::NearestBatch {
                tenant: tenant.to_string(),
                k: 5,
                queries: Mat::from_vec(2, dim, data),
            }
        } else {
            let ids: Vec<u32> = (0..8).map(|_| rng.random_range(0..vocab)).collect();
            Request::LookupBatch {
                tenant: tenant.to_string(),
                ids,
            }
        };
        let start = Instant::now();
        let resp = wire::call(&mut stream, &req).unwrap_or_else(|e| {
            eprintln!("serve_loadgen: transport failure mid-run: {e}");
            exit(1)
        });
        result
            .hist
            .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        if resp.is_error() {
            eprintln!("serve_loadgen: error response: {resp:?}");
            result.errors += 1;
        } else {
            result.ok += 1;
        }
    }
    result
}

/// Malformed-only mix. Every frame must come back as an error response
/// (or, for unrecoverable framing garbage, a dropped connection — never a
/// dead server, which the caller probes for afterwards).
fn fuzz_worker(
    addr: &str,
    tenant: &str,
    seed: u64,
    requests: usize,
    info: &wire::SnapshotInfo,
) -> WorkerResult {
    let mut rng = StdRng::seed_from_u64(0xf422 ^ seed);
    let vocab = info.vocab_size;
    let dim = info.dim as usize;
    let mut result = WorkerResult {
        hist: LatencyHistogram::new(),
        ok: 0,
        errors: 0,
    };
    let mut stream: Option<TcpStream> = None;
    for i in 0..requests {
        let conn = match &mut stream {
            Some(s) => s,
            None => match TcpStream::connect(addr) {
                Ok(s) => {
                    stream = Some(s);
                    stream.as_mut().expect("just set")
                }
                Err(e) => {
                    eprintln!("serve_loadgen: fuzz reconnect failed: {e}");
                    exit(1)
                }
            },
        };
        let start = Instant::now();
        let outcome = match i % 7 {
            // Raw garbage bytes in a valid frame.
            0 => {
                let n = rng.random_range(1usize..64);
                let body: Vec<u8> = (0..n).map(|_| rng.random_range(0u32..256) as u8).collect();
                send_raw(conn, &body)
            }
            // A truncated but version-correct request body.
            1 => {
                let good = wire::encode_request(&Request::LookupBatch {
                    tenant: tenant.to_string(),
                    ids: vec![0, 1, 2, 3],
                })
                .expect("encode");
                let cut = rng.random_range(1usize..good.len());
                send_raw(conn, &good[..cut])
            }
            // Out-of-range ids.
            2 => send_req(
                conn,
                &Request::LookupBatch {
                    tenant: tenant.to_string(),
                    ids: vec![vocab + rng.random_range(0u32..1000)],
                },
            ),
            // Wrong-dimension nearest query.
            3 => send_req(
                conn,
                &Request::NearestBatch {
                    tenant: tenant.to_string(),
                    k: 3,
                    queries: Mat::zeros(1, dim + 1),
                },
            ),
            // k = 0 and empty batches.
            4 => {
                let req = if i % 2 == 0 {
                    Request::NearestBatch {
                        tenant: tenant.to_string(),
                        k: 0,
                        queries: Mat::zeros(1, dim),
                    }
                } else {
                    Request::LookupBatch {
                        tenant: tenant.to_string(),
                        ids: Vec::new(),
                    }
                };
                send_req(conn, &req)
            }
            // Unknown tenant.
            5 => send_req(
                conn,
                &Request::LookupBatch {
                    tenant: format!("no-such-tenant-{i}"),
                    ids: vec![0],
                },
            ),
            // Bad version / op byte under a plausible body.
            _ => {
                let mut body = wire::encode_request(&Request::Info {
                    tenant: tenant.to_string(),
                })
                .expect("encode");
                let idx = rng.random_range(0usize..2.min(body.len()));
                body[idx] = body[idx].wrapping_add(rng.random_range(1u32..255) as u8);
                send_raw(conn, &body)
            }
        };
        result
            .hist
            .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        match outcome {
            FuzzOutcome::ErrorResponse => result.errors += 1,
            FuzzOutcome::OkResponse => result.ok += 1,
            // The server may drop a connection it cannot resync; count it
            // as the error it is and reconnect.
            FuzzOutcome::Disconnected => {
                result.errors += 1;
                stream = None;
            }
        }
    }
    result
}

enum FuzzOutcome {
    OkResponse,
    ErrorResponse,
    Disconnected,
}

fn send_req(conn: &mut TcpStream, req: &Request) -> FuzzOutcome {
    match wire::call(conn, req) {
        Ok(resp) if resp.is_error() => FuzzOutcome::ErrorResponse,
        Ok(_) => FuzzOutcome::OkResponse,
        Err(_) => FuzzOutcome::Disconnected,
    }
}

fn send_raw(conn: &mut TcpStream, body: &[u8]) -> FuzzOutcome {
    if wire::write_frame(conn, body).is_err() || conn.flush().is_err() {
        return FuzzOutcome::Disconnected;
    }
    match wire::read_frame(conn) {
        Ok(Some(frame)) => match wire::decode_response(&frame) {
            Some(resp) if resp.is_error() => FuzzOutcome::ErrorResponse,
            Some(_) => FuzzOutcome::OkResponse,
            None => FuzzOutcome::Disconnected,
        },
        _ => FuzzOutcome::Disconnected,
    }
}
