//! Benchmarks the continuous-retraining service: incremental (streamed
//! count deltas, exact PPMI refresh, warm-started SVD) against the
//! from-scratch baseline (full recount, full PPMI, cold SVD) on the same
//! increment sequence, and writes `BENCH_incremental.json`.
//!
//! ```text
//! cargo run --release -p embedstab_bench --bin incremental_retrain -- \
//!     --scale small --steps 5 --delta-frac 0.10 --min-speedup 1.0
//! ```
//!
//! Both services start from the same base corpus (a bootstrap retrain
//! warms the incremental side's basis, untimed), then each timed step
//! feeds an identical drifted increment of `--delta-frac` of the base
//! token budget through ingest -> retrain -> gate-scored submit. The
//! report records per-step wall clock for both modes, the speedup, the
//! gate's predicted instability for both candidates, and the EIS / k-NN
//! distance between the warm and cold retrains — re-measuring the
//! [`WARM_SVD_EIS_TOLERANCE`] contract on every run. Exits nonzero if any
//! step's speedup falls below `--min-speedup` or any warm-vs-cold EIS
//! exceeds the recorded tolerance.

use std::process::exit;
use std::time::Instant;

use embedstab_core::MeasureSuite;
use embedstab_corpus::{CoocConfig, CorpusConfig, DriftConfig, LatentModel, LatentModelConfig};
use embedstab_embeddings::Embedding;
use embedstab_pipeline::cache::scratch_dir;
use embedstab_pipeline::Scale;
use embedstab_quant::Precision;
use embedstab_serve::{GateOutcome, Slo, TenantRegistry};
use embedstab_stream::{ContinuousRetrainer, RetrainMode, RetrainerConfig, WARM_SVD_EIS_TOLERANCE};
use serde::Serialize;

const TENANT: &str = "bench";
const MASTER_SEED: u64 = 0xbe7c;

#[derive(Serialize)]
struct StepRow {
    step: usize,
    delta_docs: usize,
    delta_tokens: usize,
    incremental_seconds: f64,
    incremental_submit_seconds: f64,
    from_scratch_seconds: f64,
    from_scratch_submit_seconds: f64,
    speedup: f64,
    warm_vs_cold_eis: f64,
    warm_vs_cold_knn_dist: f64,
    incremental_predicted_instability: Option<f64>,
    from_scratch_predicted_instability: Option<f64>,
}

#[derive(Serialize)]
struct Report {
    scale: String,
    vocab_size: usize,
    window: usize,
    dim: usize,
    base_tokens: usize,
    delta_frac: f64,
    steps: usize,
    min_speedup: f64,
    warm_svd_eis_tolerance: f64,
    min_observed_speedup: f64,
    max_warm_vs_cold_eis: f64,
    per_step: Vec<StepRow>,
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("incremental_retrain: bad value '{v}' for {flag}");
            exit(2)
        }),
    }
}

fn service(mode: RetrainMode, params: &embedstab_pipeline::ScaleParams) -> ContinuousRetrainer {
    let label = match mode {
        RetrainMode::Incremental => "bench_inc",
        RetrainMode::FromScratch => "bench_scratch",
    };
    let dir = scratch_dir(label);
    let _ = std::fs::remove_dir_all(&dir);
    let registry = TenantRegistry::new(dir);
    let config = RetrainerConfig {
        cooc: CoocConfig {
            window: params.window,
            distance_weighting: false,
        },
        mode,
        ..RetrainerConfig::default()
    };
    ContinuousRetrainer::new(params.vocab_size, config, registry).unwrap_or_else(|e| {
        eprintln!("incremental_retrain: cannot build service: {e}");
        exit(1)
    })
}

struct StepTiming {
    ingest_seconds: f64,
    refresh_seconds: f64,
    retrain_seconds: f64,
    submit_seconds: f64,
}

impl StepTiming {
    /// The retraining cost the two modes differ on: ingest + statistics
    /// refresh + SVD. The gate submit is the serving layer's per-candidate
    /// constant — identical work in both modes — and is reported
    /// separately.
    fn retrain_pipeline_seconds(&self) -> f64 {
        self.ingest_seconds + self.refresh_seconds + self.retrain_seconds
    }
}

/// Ingest + retrain + gate-scored submit, each phase timed.
fn timed_step(
    svc: &mut ContinuousRetrainer,
    docs: Vec<Vec<u32>>,
    dim: usize,
) -> (StepTiming, Embedding, GateOutcome) {
    let start = Instant::now();
    svc.ingest(docs).unwrap_or_else(|e| {
        eprintln!("incremental_retrain: ingest failed: {e}");
        exit(1)
    });
    let ingest_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    svc.refresh_statistics().unwrap_or_else(|e| {
        eprintln!("incremental_retrain: refresh failed: {e}");
        exit(1)
    });
    let refresh_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let candidate = svc.retrain(dim).unwrap_or_else(|e| {
        eprintln!("incremental_retrain: retrain failed: {e}");
        exit(1)
    });
    let retrain_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let outcome = svc
        .registry_mut()
        .submit(TENANT, &candidate)
        .unwrap_or_else(|e| {
            eprintln!("incremental_retrain: submit failed: {e}");
            exit(1)
        });
    let submit_seconds = start.elapsed().as_secs_f64();
    (
        StepTiming {
            ingest_seconds,
            refresh_seconds,
            retrain_seconds,
            submit_seconds,
        },
        candidate,
        outcome,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args();
    let params = scale.params();
    let steps: usize = parse(&args, "--steps", 5);
    let delta_frac: f64 = parse(&args, "--delta-frac", 0.10);
    let min_speedup: f64 = parse(&args, "--min-speedup", 1.0);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_incremental.json".into());
    // A mid-sweep dimension: large enough that the SVD stage matters,
    // small enough that counting (the stage incrementality pays for)
    // still dominates, as it does at paper scale.
    let dim = params.dims[params.dims.len() / 2];

    let base_model = LatentModel::new(&LatentModelConfig {
        vocab_size: params.vocab_size,
        latent_dim: params.latent_dim,
        n_topics: params.n_topics,
        seed: MASTER_SEED,
        ..Default::default()
    });
    let base = base_model
        .generate_corpus(&CorpusConfig {
            n_tokens: params.corpus_tokens,
            seed: MASTER_SEED ^ 1,
            ..Default::default()
        })
        .docs()
        .to_vec();
    let delta_tokens = ((params.corpus_tokens as f64) * delta_frac) as usize;

    let mut inc = service(RetrainMode::Incremental, &params);
    let mut scratch = service(RetrainMode::FromScratch, &params);
    for svc in [&mut inc, &mut scratch] {
        svc.registry_mut()
            .register_config(
                TENANT,
                Slo::unbounded(dim as u64 * 32),
                dim,
                Precision::FULL,
            )
            .unwrap_or_else(|e| {
                eprintln!("incremental_retrain: cannot register tenant: {e}");
                exit(1)
            });
    }

    eprintln!(
        "incremental_retrain: scale {scale:?}, vocab {}, base {} tokens, \
         {} steps x {} delta tokens, dim {dim}",
        params.vocab_size, params.corpus_tokens, steps, delta_tokens
    );

    // Bootstrap both services on the base corpus (untimed): establishes
    // the live snapshot each later candidate is gated against and warms
    // the incremental side's SVD basis.
    let (_, _, _) = timed_step(&mut inc, base.clone(), dim);
    let (_, _, _) = timed_step(&mut scratch, base, dim);

    let mut per_step = Vec::with_capacity(steps);
    let mut min_observed_speedup = f64::INFINITY;
    let mut max_eis: f64 = 0.0;
    for step in 1..=steps {
        // Each step's increment comes from a progressively drifted model:
        // the streaming analogue of the paper's Wiki'17 -> Wiki'18 shift.
        let drifted = base_model.drifted(&DriftConfig {
            drift_sigma: 0.2,
            seed: MASTER_SEED ^ (10 + step as u64),
            ..Default::default()
        });
        let docs = drifted
            .generate_corpus(&CorpusConfig {
                n_tokens: delta_tokens,
                seed: MASTER_SEED ^ (100 + step as u64),
                ..Default::default()
            })
            .docs()
            .to_vec();
        let delta_docs = docs.len();
        let n_tokens: usize = docs.iter().map(Vec::len).sum();

        let (inc_t, warm, inc_outcome) = timed_step(&mut inc, docs.clone(), dim);
        let (scratch_t, cold, scratch_outcome) = timed_step(&mut scratch, docs, dim);

        let suite = MeasureSuite::new(&cold, &cold, 3.0, 42);
        let measures = suite.compute_all(&cold, &warm);
        let inc_s = inc_t.retrain_pipeline_seconds();
        let scratch_s = scratch_t.retrain_pipeline_seconds();
        let speedup = scratch_s / inc_s;
        min_observed_speedup = min_observed_speedup.min(speedup);
        max_eis = max_eis.max(measures.eis);
        eprintln!(
            "step {step}: incremental {inc_s:.3}s (ingest {:.3} + refresh {:.3} + svd {:.3}), \
             from-scratch {scratch_s:.3}s ({:.3} + {:.3} + {:.3}) -> {speedup:.2}x; \
             submit {:.3}/{:.3}s; warm-vs-cold EIS {:.4}",
            inc_t.ingest_seconds,
            inc_t.refresh_seconds,
            inc_t.retrain_seconds,
            scratch_t.ingest_seconds,
            scratch_t.refresh_seconds,
            scratch_t.retrain_seconds,
            inc_t.submit_seconds,
            scratch_t.submit_seconds,
            measures.eis
        );
        per_step.push(StepRow {
            step,
            delta_docs,
            delta_tokens: n_tokens,
            incremental_seconds: inc_s,
            incremental_submit_seconds: inc_t.submit_seconds,
            from_scratch_seconds: scratch_s,
            from_scratch_submit_seconds: scratch_t.submit_seconds,
            speedup,
            warm_vs_cold_eis: measures.eis,
            warm_vs_cold_knn_dist: measures.knn_dist,
            incremental_predicted_instability: inc_outcome
                .evaluation()
                .map(|e| e.predicted_instability),
            from_scratch_predicted_instability: scratch_outcome
                .evaluation()
                .map(|e| e.predicted_instability),
        });
    }

    let report = Report {
        scale: format!("{scale:?}").to_lowercase(),
        vocab_size: params.vocab_size,
        window: params.window,
        dim,
        base_tokens: params.corpus_tokens,
        delta_frac,
        steps,
        min_speedup,
        warm_svd_eis_tolerance: WARM_SVD_EIS_TOLERANCE,
        min_observed_speedup,
        max_warm_vs_cold_eis: max_eis,
        per_step,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json.as_bytes()).unwrap_or_else(|e| {
        eprintln!("incremental_retrain: cannot write {out}: {e}");
        exit(1)
    });
    println!(
        "{} steps, min speedup {:.2}x (threshold {:.2}x), max warm-vs-cold EIS {:.4} \
         (tolerance {}) -> {out}",
        report.steps,
        report.min_observed_speedup,
        report.min_speedup,
        report.max_warm_vs_cold_eis,
        report.warm_svd_eis_tolerance,
    );

    if report.min_observed_speedup < min_speedup {
        eprintln!(
            "incremental_retrain: FAILURE: speedup {:.2}x below threshold {:.2}x",
            report.min_observed_speedup, min_speedup
        );
        exit(1)
    }
    if report.max_warm_vs_cold_eis > WARM_SVD_EIS_TOLERANCE {
        eprintln!(
            "incremental_retrain: FAILURE: warm-vs-cold EIS {:.4} exceeds tolerance {}",
            report.max_warm_vs_cold_eis, WARM_SVD_EIS_TOLERANCE
        );
        exit(1)
    }
}
