//! Figure 13 (Appendix E.2): the stability-memory tradeoff survives more
//! complex downstream models — a CNN for SST-2 and a BiLSTM-CRF for NER.

use embedstab_bench::setup;
use embedstab_core::{disagreement, masked_disagreement};
use embedstab_downstream::eval::flatten_tags;
use embedstab_downstream::models::{
    BiLstmCrfTagger, CnnConfig, CnnSentimentModel, LstmConfig, TrainSpec,
};
use embedstab_embeddings::Algo;
use embedstab_pipeline::report::{pct, print_table};
use embedstab_pipeline::Scale;
use embedstab_quant::Precision;

fn main() {
    let scale = Scale::from_args();
    let exp = setup(scale, &[Algo::Cbow, Algo::Mc]);
    let params = &exp.world.params;
    // The paper trains a representative subset with the CRF on
    // (dims {25,100,800} x precisions {1,4,32}); mirror that subsetting.
    let dims = vec![
        params.dims[0],
        params.dims[params.dims.len() / 2],
        *params.dims.last().expect("dims"),
    ];
    let precisions = [Precision::new(1), Precision::new(4), Precision::FULL];
    let seed = params.seeds[0];

    println!("\n=== Figure 13a: CNN on SST-2 ===");
    let ds = exp.world.sentiment_dataset("sst2");
    let cnn_cfg = CnnConfig::default();
    let spec = TrainSpec {
        lr: 5e-3,
        epochs: (params.logreg_epochs / 3).max(4),
        init_seed: seed,
        sample_seed: seed,
        ..Default::default()
    };
    let mut table = Vec::new();
    for algo in [Algo::Cbow, Algo::Mc] {
        for &dim in &dims {
            for &prec in &precisions {
                let (q17, q18) = exp.grid.quantized_pair(algo, dim, seed, prec);
                let m17 = CnnSentimentModel::train(&q17, &ds.train, &cnn_cfg, &spec);
                let m18 = CnnSentimentModel::train(&q18, &ds.train, &cnn_cfg, &spec);
                let di = disagreement(&m17.predict(&q17, &ds.test), &m18.predict(&q18, &ds.test));
                table.push(vec![
                    algo.name().to_string(),
                    dim.to_string(),
                    prec.bits().to_string(),
                    (dim as u64 * prec.bits() as u64).to_string(),
                    pct(di),
                ]);
            }
        }
    }
    print_table(&["algo", "dim", "bits", "bits/word", "disagree%"], &table);

    println!("\n=== Figure 13b: BiLSTM-CRF on NER ===");
    let ner = &exp.world.ner;
    let lstm_cfg = LstmConfig {
        hidden: params.lstm_hidden,
        epochs: params.lstm_epochs,
        init_seed: seed,
        sample_seed: seed,
        ..Default::default()
    };
    let mut table = Vec::new();
    for algo in [Algo::Cbow, Algo::Mc] {
        for &dim in &dims {
            for &prec in &precisions {
                let (q17, q18) = exp.grid.quantized_pair(algo, dim, seed, prec);
                let m17 = BiLstmCrfTagger::train(&q17, &ner.train, &lstm_cfg);
                let m18 = BiLstmCrfTagger::train(&q18, &ner.train, &lstm_cfg);
                let p17 = m17.predict_all(&q17, &ner.test);
                let p18 = m18.predict_all(&q18, &ner.test);
                let (f17, mask) = flatten_tags(&p17, &ner.test);
                let (f18, _) = flatten_tags(&p18, &ner.test);
                let di = masked_disagreement(&f17, &f18, &mask);
                table.push(vec![
                    algo.name().to_string(),
                    dim.to_string(),
                    prec.bits().to_string(),
                    (dim as u64 * prec.bits() as u64).to_string(),
                    pct(di),
                ]);
            }
        }
    }
    print_table(&["algo", "dim", "bits", "bits/word", "disagree%"], &table);
    println!("\nPaper shape: low-memory configurations stay markedly less stable even");
    println!("under CNN and CRF decoders (Appendix E.2).");
}
