//! Figure 15 (Appendix E.5): downstream instability as a function of the
//! downstream model's learning rate, for CBOW and MC on SST-2 and MR at
//! two dimensions.

use embedstab_bench::{aggregate, setup};
use embedstab_embeddings::Algo;
use embedstab_pipeline::report::{pct, print_table};
use embedstab_pipeline::{Experiment, Scale};
use embedstab_quant::Precision;

fn main() {
    let scale = Scale::from_args();
    let exp = setup(scale, &[Algo::Cbow, Algo::Mc]);
    let params = &exp.world.params;
    let dims = vec![
        params.dims[params.dims.len() / 2],
        *params.dims.last().expect("dims"),
    ];
    let lrs = [1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0];

    println!("\n=== Figure 15: instability vs downstream learning rate (b=32) ===");
    let mut table = Vec::new();
    for task in ["sst2", "mr"] {
        for &lr in &lrs {
            let rows = Experiment::new(&exp.world)
                .grid(&exp.grid)
                .tasks([task])
                .algos([Algo::Cbow, Algo::Mc])
                .lr_override(lr)
                .dims(dims.clone())
                .precisions([Precision::FULL])
                .run();
            for a in aggregate(&rows) {
                table.push(vec![
                    task.to_string(),
                    a.algo.clone(),
                    a.dim.to_string(),
                    format!("{lr:.0e}"),
                    pct(a.mean_di),
                    pct(a.mean_quality),
                ]);
            }
        }
    }
    print_table(
        &["task", "algo", "dim", "lr", "disagree%", "accuracy%"],
        &table,
    );
    println!("\nPaper shape: very small and very large learning rates are the least");
    println!("stable; the accuracy-optimal rates sit in the stable middle (App. E.5).");
}
