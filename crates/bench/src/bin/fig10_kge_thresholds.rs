//! Figure 10 (Appendix D.6): triplet classification stability when the
//! decision thresholds are tuned *per dataset* (each embedding fits its
//! own thresholds) instead of shared — the tradeoff flattens faster at
//! high precision, as the paper observes.

use embedstab_core::disagreement;
use embedstab_kge::{
    make_negatives, quantize_transe_pair, train_transe, KgSpec, TranseConfig, TripletClassifier,
};
use embedstab_pipeline::report::{pct, print_table};
use embedstab_pipeline::Scale;
use embedstab_quant::Precision;

fn main() {
    let scale = Scale::from_args();
    let dims = match scale {
        Scale::Tiny => vec![4, 8, 16],
        Scale::Small => vec![4, 8, 16, 32, 64],
        Scale::Paper => vec![10, 20, 50, 100, 200, 400],
    };
    let precisions = match scale {
        Scale::Tiny => vec![Precision::new(1), Precision::new(4), Precision::FULL],
        _ => Precision::SWEEP.to_vec(),
    };
    let spec = match scale {
        Scale::Tiny => KgSpec {
            n_entities: 120,
            n_relations: 8,
            triplets_per_relation: 100,
            ..Default::default()
        },
        _ => KgSpec::default(),
    };
    let cfg = TranseConfig::default();
    let kg = spec.generate();
    let kg95 = kg.subsample_train(0.95, 1);
    let valid_neg = make_negatives(&kg, &kg.valid, 0);
    let test_neg = make_negatives(&kg, &kg.test, 1);

    println!("\n=== Figure 10: triplet classification, thresholds tuned per dataset ===");
    let mut table = Vec::new();
    for &dim in &dims {
        let full = train_transe(&kg, dim, &cfg, 0);
        let sub = train_transe(&kg95, dim, &cfg, 0);
        for &prec in &precisions {
            let (qf, qs) = quantize_transe_pair(&full, &sub, prec);
            // Each embedding gets its own thresholds (the per-dataset
            // variant), instead of sharing the FB15K-95 thresholds.
            let clf_f = TripletClassifier::fit(&qf, &kg.valid, &valid_neg, kg.n_relations);
            let clf_s = TripletClassifier::fit(&qs, &kg.valid, &valid_neg, kg.n_relations);
            let mut preds_f = clf_f.predict(&qf, &kg.test);
            preds_f.extend(clf_f.predict(&qf, &test_neg));
            let mut preds_s = clf_s.predict(&qs, &kg.test);
            preds_s.extend(clf_s.predict(&qs, &test_neg));
            let di = disagreement(&preds_f, &preds_s);
            let acc = clf_f.accuracy(&qf, &kg.test, &test_neg);
            table.push(vec![
                dim.to_string(),
                prec.bits().to_string(),
                (dim as u64 * prec.bits() as u64).to_string(),
                pct(di),
                pct(acc),
            ]);
        }
    }
    print_table(
        &["dim", "bits", "bits/vec", "disagree%", "accuracy%"],
        &table,
    );
    println!("\nPaper shape: trends hold but plateau faster than with shared thresholds");
    println!("(compare against fig3_kge).");
}
