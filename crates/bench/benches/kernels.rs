//! Criterion micro-benchmarks for the performance-facing kernels behind
//! every experiment: GEMM, SVD, quantization, co-occurrence counting, the
//! embedding distance measures, and downstream training.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use embedstab_core::measures::{
    DistanceMeasure, EigenspaceOverlap, EisMeasure, KnnMeasure, PipLoss, SemanticDisplacement,
};
use embedstab_corpus::{Cooc, CoocConfig, CorpusConfig, LatentModel, LatentModelConfig};
use embedstab_downstream::models::{LogReg, TrainSpec};
use embedstab_embeddings::{CorpusStats, Embedding};
use embedstab_linalg::Mat;
use embedstab_quant::{quantize, Precision};
use rand::SeedableRng;

fn bench_gemm(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    // Blocked kernel across the 256-1024 sizes the figures actually hit,
    // with the naive triple loop as the "before" reference at the sizes
    // where it finishes in reasonable time.
    for &s in &[256usize, 512, 1024] {
        let a = Mat::random_normal(s, s, &mut rng);
        let b = Mat::random_normal(s, s, &mut rng);
        c.bench_function(&format!("gemm_{s}"), |bench| {
            bench.iter(|| black_box(a.matmul(black_box(&b))));
        });
        if s <= 512 {
            c.bench_function(&format!("gemm_naive_{s}"), |bench| {
                bench.iter(|| black_box(a.matmul_naive(black_box(&b))));
            });
        }
    }
    // Transposed variants share the packed kernel; keep them visible so a
    // packing regression in either orientation shows up.
    let a = Mat::random_normal(512, 512, &mut rng);
    let b = Mat::random_normal(512, 512, &mut rng);
    c.bench_function("gemm_tn_512", |bench| {
        bench.iter(|| black_box(a.matmul_tn(black_box(&b))));
    });
    c.bench_function("gemm_nt_512", |bench| {
        bench.iter(|| black_box(a.matmul_nt(black_box(&b))));
    });
    let tall = Mat::random_normal(1000, 64, &mut rng);
    c.bench_function("gram_1000x64", |bench| {
        bench.iter(|| black_box(tall.gram()));
    });
}

fn bench_svd(c: &mut Criterion) {
    use embedstab_linalg::{RandomizedSvd, SvdMethod};
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    // Auto dispatch (randomized for the tall sizes); bench names predate
    // the dispatch and are kept stable for baseline comparisons.
    for &(n, d) in &[(200usize, 16usize), (500, 32), (1000, 64)] {
        let a = Mat::random_normal(n, d, &mut rng);
        c.bench_function(&format!("jacobi_svd_{n}x{d}"), |bench| {
            bench.iter(|| black_box(a.svd()));
        });
    }
    // Before/after at the headline size: exact Jacobi vs the randomized
    // range finder, plus a truncated sketch as used by rank-k consumers.
    let a = Mat::random_normal(1000, 64, &mut rng);
    c.bench_function("svd_exact_1000x64", |bench| {
        bench.iter(|| black_box(a.svd_with(SvdMethod::Exact)));
    });
    c.bench_function("svd_randomized_1000x64", |bench| {
        bench.iter(|| black_box(a.svd_randomized(RandomizedSvd::full())));
    });
    c.bench_function("svd_randomized_1000x64_rank16", |bench| {
        bench.iter(|| black_box(a.svd_randomized(RandomizedSvd::truncated(16))));
    });
}

fn bench_quantization(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let emb = Embedding::new(Mat::random_normal(1000, 64, &mut rng));
    for bits in [1u8, 4, 8] {
        c.bench_function(&format!("quantize_1000x64_b{bits}"), |bench| {
            bench.iter(|| black_box(quantize(&emb, Precision::new(bits), None)));
        });
    }
}

fn bench_cooccurrence(c: &mut Criterion) {
    let model = LatentModel::new(&LatentModelConfig {
        vocab_size: 500,
        ..Default::default()
    });
    let corpus = model.generate_corpus(&CorpusConfig {
        n_tokens: 50_000,
        ..Default::default()
    });
    c.bench_function("cooc_50k_tokens_w8", |bench| {
        bench.iter(|| {
            black_box(Cooc::count(
                &corpus,
                500,
                &CoocConfig {
                    window: 8,
                    distance_weighting: false,
                },
            ))
        });
    });
}

fn bench_measures(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let x = Embedding::new(Mat::random_normal(1000, 32, &mut rng));
    let mut noisy = x.mat().clone();
    noisy.axpy(0.1, &Mat::random_normal(1000, 32, &mut rng));
    let y = Embedding::new(noisy);
    let e17 = Embedding::new(Mat::random_normal(1000, 64, &mut rng));
    let e18 = Embedding::new(Mat::random_normal(1000, 64, &mut rng));
    let eis = EisMeasure::new(&e17, &e18, 3.0);
    c.bench_function("measure_eis_1000x32", |bench| {
        bench.iter(|| black_box(eis.distance_between(&x, &y)));
    });
    let knn = KnnMeasure::new(5, 200, 0);
    c.bench_function("measure_knn_1000x32_q200", |bench| {
        bench.iter(|| black_box(knn.distance(&x, &y)));
    });
    c.bench_function("measure_pip_1000x32", |bench| {
        bench.iter(|| black_box(PipLoss.distance(&x, &y)));
    });
    c.bench_function("measure_semdisp_1000x32", |bench| {
        bench.iter(|| black_box(SemanticDisplacement.distance(&x, &y)));
    });
    c.bench_function("measure_overlap_1000x32", |bench| {
        bench.iter(|| black_box(EigenspaceOverlap.distance(&x, &y)));
    });
}

fn bench_training(c: &mut Criterion) {
    let model = LatentModel::new(&LatentModelConfig {
        vocab_size: 300,
        ..Default::default()
    });
    let corpus = model.generate_corpus(&CorpusConfig {
        n_tokens: 20_000,
        ..Default::default()
    });
    let stats = CorpusStats::compute(Arc::new(corpus), 300, 6);
    c.bench_function("train_mc_d16_20k", |bench| {
        bench.iter(|| {
            black_box(embedstab_embeddings::train_embedding(
                embedstab_embeddings::Algo::Mc,
                &stats,
                &model.vocab,
                16,
                0,
            ))
        });
    });
    // Logistic regression on synthetic features.
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let feats = Mat::random_normal(500, 32, &mut rng);
    let labels: Vec<bool> = (0..500).map(|i| feats[(i, 0)] > 0.0).collect();
    c.bench_function("train_logreg_500x32", |bench| {
        bench.iter(|| {
            black_box(LogReg::train(
                &feats,
                &labels,
                &TrainSpec {
                    epochs: 10,
                    ..Default::default()
                },
            ))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm, bench_svd, bench_quantization, bench_cooccurrence,
              bench_measures, bench_training
}
criterion_main!(benches);
