//! The fleet's typed error taxonomy.
//!
//! Every failure mode a coordinator or worker can hit — transport, a
//! malformed peer, a corrupt cache transfer, an exhausted slice — has a
//! variant here. Nothing in this crate panics on peer-controlled input
//! (the `no-panic-in-hot-path` lint covers `crates/fleet/src/**`): a
//! broken peer costs one connection or one lease, never the fleet.

use std::io;

use embedstab_pipeline::StoreError;

use crate::wire::ErrorCode;

/// Any fleet-level failure.
#[derive(Debug)]
pub enum FleetError {
    /// A transport error on the coordinator connection.
    Io(io::Error),
    /// The peer sent bytes that do not decode as the fleet protocol.
    Protocol {
        /// What failed to decode.
        detail: String,
    },
    /// The coordinator answered with a typed wire error.
    Remote {
        /// The wire error code.
        code: ErrorCode,
        /// The coordinator's message.
        message: String,
    },
    /// A cache transfer assembled to bytes that fail verification (wrong
    /// content hash, or a header that does not match the key) — re-pull.
    CorruptTransfer {
        /// The key being pulled.
        key: String,
        /// What failed to verify.
        detail: String,
    },
    /// The content-addressed store refused a key or bytes.
    Store(StoreError),
    /// A slice ran out of re-dispatch attempts; the fleet has failed.
    Exhausted {
        /// The slice that could not be completed.
        slice: u32,
        /// How many dispatch attempts it burned.
        attempts: u32,
    },
    /// The coordinator connection is gone and could not be re-established.
    CoordinatorGone {
        /// The last transport failure.
        detail: String,
    },
    /// The coordinator reported the fleet failed; the worker should stop.
    FleetFailed {
        /// The coordinator's reason.
        message: String,
    },
    /// A shard subprocess could not be spawned.
    SpawnFailed {
        /// The binary path that failed to launch.
        bin: String,
        /// The OS error.
        detail: String,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Io(e) => write!(f, "fleet transport error: {e}"),
            FleetError::Protocol { detail } => {
                write!(f, "fleet protocol violation: {detail}")
            }
            FleetError::Remote { code, message } => {
                write!(f, "coordinator error ({code:?}): {message}")
            }
            FleetError::CorruptTransfer { key, detail } => {
                write!(f, "corrupt transfer of '{key}': {detail}")
            }
            FleetError::Store(e) => write!(f, "cache store error: {e}"),
            FleetError::Exhausted { slice, attempts } => write!(
                f,
                "slice {slice} failed {attempts} dispatch attempts; fleet failed"
            ),
            FleetError::CoordinatorGone { detail } => {
                write!(f, "coordinator unreachable: {detail}")
            }
            FleetError::FleetFailed { message } => {
                write!(f, "coordinator reports the fleet failed: {message}")
            }
            FleetError::SpawnFailed { bin, detail } => {
                write!(f, "cannot spawn shard binary '{bin}': {detail}")
            }
        }
    }
}

impl std::error::Error for FleetError {}

impl From<io::Error> for FleetError {
    fn from(e: io::Error) -> FleetError {
        FleetError::Io(e)
    }
}

impl From<StoreError> for FleetError {
    fn from(e: StoreError) -> FleetError {
        FleetError::Store(e)
    }
}
