//! Machine-spanning shard fleets: a TCP coordinator/worker pair that
//! ships caches by fingerprint and survives worker deaths.
//!
//! The single-host `coordinator` binary spawns shard subprocesses on one
//! box; this crate is the next step out — workers on **other** machines
//! connect over TCP, pull the coordinator's world (and warm pair-cache
//! entries) by content-addressed key, lease shard slices from a retrying
//! work queue, and stream row files back. The contract carried over from
//! everything else in this workspace: a fleet run's merged rows are
//! **bitwise identical** to the unsharded run, worker deaths included.
//!
//! The moving parts:
//!
//! - [`wire`] — the framed protocol (requests, responses, chunked cache
//!   transfer), riding `embedstab_serve::wire`'s framing;
//! - [`queue`] — the lease ledger: heartbeat timeouts, capped-backoff
//!   re-dispatch, attempt caps, injected time;
//! - [`transfer`] — chunked pulls with receipt-time verification
//!   (whole-file hash + cache-header-vs-key);
//! - [`coordinator`] — the serving side: staged row commits, crash-fast
//!   lease release on disconnect;
//! - [`worker`] — the pulling side: cache sync, shard subprocess
//!   supervision, heartbeats, fault injection for drills.
//!
//! The runnable entry points are `fleet_coordinator` and `fleet_worker`
//! in the bench crate; `crates/bench/tests/fleet.rs` pins the bitwise
//! guarantee end to end with an injected mid-slice worker death.

pub mod coordinator;
pub mod error;
pub mod queue;
pub mod transfer;
pub mod wire;
pub mod worker;

pub use coordinator::{run_coordinator, CoordinatorConfig};
pub use error::FleetError;
pub use queue::{LeaseOutcome, QueueConfig, WorkQueue};
pub use transfer::{ensure_key, pull_key};
pub use wire::{FleetSpec, Request, Response};
pub use worker::{run_worker, WorkerConfig, WorkerReport, FAIL_ONCE_ENV};
