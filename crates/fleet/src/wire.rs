//! The fleet wire protocol: worker ⇄ coordinator framing.
//!
//! Rides the exact conventions of [`embedstab_serve::wire`] — and its
//! [`read_frame`]/[`write_frame`] length-prefixed framing verbatim —
//! little-endian everywhere, a version byte leading every body, lengths
//! checked against the remaining input before any allocation, and a typed
//! [`ErrorCode`] taxonomy instead of panics. Every byte here crosses a
//! machine boundary and is peer-controlled: any truncation, bad version,
//! unknown op, or trailing garbage decodes to `None`, never a panic.
//!
//! # Frame layout
//!
//! ```text
//! frame    := len: u32 (LE, body length <= serve's MAX_FRAME_BYTES) body
//! request  := version: u8 (= FLEET_WIRE_VERSION), op: u8, payload
//!   Hello     (1) := worker: str16
//!   Lease     (2) := (empty)
//!   Heartbeat (3) := slice: u32
//!   CacheKeys (4) := (empty)
//!   CacheGet  (5) := key: str16, chunk: u32
//!   PushRows  (6) := slice: u32, name: str16, bytes: bytes32
//!   Complete  (7) := slice: u32
//!   Failed    (8) := slice: u32, message: str32
//! response := version: u8 (= FLEET_WIRE_VERSION), tag: u8, payload
//!   Welcome (1) := bin: str16, scale: str16, shards: u32,
//!                  world_key: str16, n_extra: u32, n_extra x str16
//!   Ack     (2) := (empty)
//!   Job     (3) := slice: u32, shards: u32
//!   Wait    (4) := millis: u64
//!   Drained (5) := (empty)
//!   Keys    (6) := n: u32, n x str16
//!   Chunk   (7) := total_len: u64, chunks: u32, content_hash: u64,
//!                  bytes: bytes32
//!   Lost    (8) := (empty)
//!   Error   (9) := code: u16, message: str32
//! str16    := len: u16, utf8 bytes     str32 := len: u32, utf8 bytes
//! bytes32  := len: u32, raw bytes
//! ```
//!
//! Cache files can dwarf the 16 MiB frame ceiling, so transfers are
//! chunked: a `CacheGet { key, chunk }` answers with one
//! [`CHUNK_BYTES`]-sized piece plus the total length, chunk count, and the
//! whole file's [`content_hash`](embedstab_pipeline::content_hash) — the
//! receiver reassembles, checks the hash, then checks the embedded cache
//! header against the key ([`embedstab_pipeline::store::verify`]).

use embedstab_corpus::codec::{take_u32, take_u64};

pub use embedstab_serve::wire::{read_frame, write_frame, MAX_FRAME_BYTES};

/// Protocol version byte leading every request and response body.
pub const FLEET_WIRE_VERSION: u8 = 1;

/// Bytes per cache-transfer chunk — comfortably under the frame ceiling
/// so a chunk plus its envelope always frames.
pub const CHUNK_BYTES: usize = 4 << 20;

const OP_HELLO: u8 = 1;
const OP_LEASE: u8 = 2;
const OP_HEARTBEAT: u8 = 3;
const OP_CACHE_KEYS: u8 = 4;
const OP_CACHE_GET: u8 = 5;
const OP_PUSH_ROWS: u8 = 6;
const OP_COMPLETE: u8 = 7;
const OP_FAILED: u8 = 8;

const TAG_WELCOME: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_JOB: u8 = 3;
const TAG_WAIT: u8 = 4;
const TAG_DRAINED: u8 = 5;
const TAG_KEYS: u8 = 6;
const TAG_CHUNK: u8 = 7;
const TAG_LOST: u8 = 8;
const TAG_ERROR: u8 = 9;

/// Everything a freshly connected worker needs to run slices: which shard
/// binary (a bare name the worker resolves next to its own executable),
/// the scale tag, the shard count, the world-cache key to pull, and extra
/// arguments forwarded to every shard run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetSpec {
    /// Shard binary name (resolved worker-side; never a path).
    pub bin: String,
    /// Scale tag (`tiny`/`small`/`paper`) passed as `--scale`.
    pub scale: String,
    /// Total shard count `n`; slices are `0..n`.
    pub shards: u32,
    /// The world-cache key every worker must hold before running.
    pub world_key: String,
    /// Extra arguments forwarded to the shard binary verbatim.
    pub extra: Vec<String>,
}

/// One worker request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Introduce this connection; the response is `Welcome`. Re-sending
    /// `Hello` with the same name after a reconnect releases any leases
    /// the name's previous connection still held.
    Hello {
        /// The worker's fleet-unique name.
        worker: String,
    },
    /// Ask for a slice to run.
    Lease,
    /// Prove this connection's lease on `slice` is still alive.
    Heartbeat {
        /// The leased slice.
        slice: u32,
    },
    /// List every cache key the coordinator can serve.
    CacheKeys,
    /// Fetch one chunk of a cache file by key.
    CacheGet {
        /// A cache file name (see [`embedstab_pipeline::store::parse_key`]).
        key: String,
        /// Zero-based chunk index.
        chunk: u32,
    },
    /// Stage one produced row file for the leased slice (committed only
    /// when `Complete` lands while the lease is still held).
    PushRows {
        /// The leased slice.
        slice: u32,
        /// The row file's bare name (`<stem>.shard<i>of<n>.jsonl`).
        name: String,
        /// The file's bytes.
        bytes: Vec<u8>,
    },
    /// Declare the leased slice done; the coordinator commits its staged
    /// row files.
    Complete {
        /// The leased slice.
        slice: u32,
    },
    /// Report that the slice's shard subprocess failed; the coordinator
    /// re-queues it (with backoff) for another dispatch.
    Failed {
        /// The leased slice.
        slice: u32,
        /// Why it failed (for the coordinator's log).
        message: String,
    },
}

/// One coordinator response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Answer to `Hello`.
    Welcome(FleetSpec),
    /// Generic success (heartbeat accepted, rows staged, failure noted).
    Ack,
    /// A slice assignment.
    Job {
        /// The slice to run (`--shard slice/shards`).
        slice: u32,
        /// The fleet's shard count.
        shards: u32,
    },
    /// No work right now; ask again after this many milliseconds.
    Wait {
        /// Suggested retry delay.
        millis: u64,
    },
    /// Every slice is committed; the worker can exit cleanly.
    Drained,
    /// Answer to `CacheKeys`.
    Keys {
        /// Every servable cache key, sorted.
        keys: Vec<String>,
    },
    /// One chunk of a cache file.
    Chunk {
        /// The whole file's length in bytes.
        total_len: u64,
        /// How many chunks the file spans.
        chunks: u32,
        /// FNV-1a over the whole file (receipt-time transfer check).
        content_hash: u64,
        /// This chunk's bytes.
        bytes: Vec<u8>,
    },
    /// The lease this op referred to is no longer held by this worker
    /// (expired and re-dispatched); drop the work and lease again.
    Lost,
    /// A typed failure; the connection stays usable unless the framing
    /// itself is broken.
    Error {
        /// The error taxonomy entry.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// The fleet error taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request body did not decode.
    Malformed = 1,
    /// An op other than `Hello` arrived before `Hello`.
    MustHello = 2,
    /// The requested cache key is well-formed but not present.
    UnknownKey = 3,
    /// The requested cache key is not a well-formed cache file name.
    BadKey = 4,
    /// A chunk index at or past the file's chunk count.
    ChunkOutOfRange = 5,
    /// An op referenced a slice outside `0..shards`.
    UnknownSlice = 6,
    /// A pushed row file was rejected (bad name, too large, or its shard
    /// suffix disagrees with the leased slice).
    BadRowFile = 7,
    /// A slice ran out of re-dispatch attempts; the fleet has failed and
    /// workers should exit.
    FleetFailed = 8,
    /// The coordinator failed internally.
    Internal = 9,
}

impl ErrorCode {
    /// The on-wire discriminant — a match, not an `as` cast, so a new
    /// variant without a code is a compile error here.
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::MustHello => 2,
            ErrorCode::UnknownKey => 3,
            ErrorCode::BadKey => 4,
            ErrorCode::ChunkOutOfRange => 5,
            ErrorCode::UnknownSlice => 6,
            ErrorCode::BadRowFile => 7,
            ErrorCode::FleetFailed => 8,
            ErrorCode::Internal => 9,
        }
    }

    fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::MustHello,
            3 => ErrorCode::UnknownKey,
            4 => ErrorCode::BadKey,
            5 => ErrorCode::ChunkOutOfRange,
            6 => ErrorCode::UnknownSlice,
            7 => ErrorCode::BadRowFile,
            8 => ErrorCode::FleetFailed,
            9 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a u16-length-prefixed string; `None` if it does not fit.
fn put_str16(out: &mut Vec<u8>, s: &str) -> Option<()> {
    let len = u16::try_from(s.len()).ok()?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Some(())
}

/// Appends a u32-length-prefixed string; `None` if it does not fit.
fn put_str32(out: &mut Vec<u8>, s: &str) -> Option<()> {
    let len = u32::try_from(s.len()).ok()?;
    put_u32(out, len);
    out.extend_from_slice(s.as_bytes());
    Some(())
}

/// Appends u32-length-prefixed raw bytes; `None` if they do not fit.
fn put_bytes32(out: &mut Vec<u8>, bytes: &[u8]) -> Option<()> {
    let len = u32::try_from(bytes.len()).ok()?;
    put_u32(out, len);
    out.extend_from_slice(bytes);
    Some(())
}

fn take_str16(r: &mut &[u8]) -> Option<String> {
    let (head, rest) = r.split_first_chunk::<2>()?;
    *r = rest;
    let len = u16::from_le_bytes(*head) as usize;
    if r.len() < len {
        return None;
    }
    let s = std::str::from_utf8(&r[..len]).ok()?.to_string();
    *r = &r[len..];
    Some(s)
}

fn take_str32(r: &mut &[u8]) -> Option<String> {
    let len = take_u32(r)? as usize;
    if r.len() < len {
        return None;
    }
    let s = std::str::from_utf8(&r[..len]).ok()?.to_string();
    *r = &r[len..];
    Some(s)
}

fn take_bytes32(r: &mut &[u8]) -> Option<Vec<u8>> {
    let len = take_u32(r)? as usize;
    if r.len() < len {
        return None;
    }
    let bytes = r[..len].to_vec();
    *r = &r[len..];
    Some(bytes)
}

/// Encodes a request body (frame it with [`write_frame`]). `None` if a
/// length field overflows its wire width.
pub fn encode_request(req: &Request) -> Option<Vec<u8>> {
    let mut out = vec![FLEET_WIRE_VERSION];
    match req {
        Request::Hello { worker } => {
            out.push(OP_HELLO);
            put_str16(&mut out, worker)?;
        }
        Request::Lease => out.push(OP_LEASE),
        Request::Heartbeat { slice } => {
            out.push(OP_HEARTBEAT);
            put_u32(&mut out, *slice);
        }
        Request::CacheKeys => out.push(OP_CACHE_KEYS),
        Request::CacheGet { key, chunk } => {
            out.push(OP_CACHE_GET);
            put_str16(&mut out, key)?;
            put_u32(&mut out, *chunk);
        }
        Request::PushRows { slice, name, bytes } => {
            out.push(OP_PUSH_ROWS);
            put_u32(&mut out, *slice);
            put_str16(&mut out, name)?;
            put_bytes32(&mut out, bytes)?;
        }
        Request::Complete { slice } => {
            out.push(OP_COMPLETE);
            put_u32(&mut out, *slice);
        }
        Request::Failed { slice, message } => {
            out.push(OP_FAILED);
            put_u32(&mut out, *slice);
            put_str32(&mut out, message)?;
        }
    }
    Some(out)
}

/// Decodes a request body; `None` on any truncation, version/op mismatch,
/// bad UTF-8, or trailing bytes.
pub fn decode_request(mut body: &[u8]) -> Option<Request> {
    let r = &mut body;
    let (head, rest) = r.split_first_chunk::<2>()?;
    *r = rest;
    let [version, op] = *head;
    if version != FLEET_WIRE_VERSION {
        return None;
    }
    let req = match op {
        OP_HELLO => Request::Hello {
            worker: take_str16(r)?,
        },
        OP_LEASE => Request::Lease,
        OP_HEARTBEAT => Request::Heartbeat {
            slice: take_u32(r)?,
        },
        OP_CACHE_KEYS => Request::CacheKeys,
        OP_CACHE_GET => Request::CacheGet {
            key: take_str16(r)?,
            chunk: take_u32(r)?,
        },
        OP_PUSH_ROWS => Request::PushRows {
            slice: take_u32(r)?,
            name: take_str16(r)?,
            bytes: take_bytes32(r)?,
        },
        OP_COMPLETE => Request::Complete {
            slice: take_u32(r)?,
        },
        OP_FAILED => Request::Failed {
            slice: take_u32(r)?,
            message: take_str32(r)?,
        },
        _ => return None,
    };
    if !r.is_empty() {
        return None;
    }
    Some(req)
}

/// Encodes a response body (frame it with [`write_frame`]). `None` if a
/// length field overflows its wire width.
pub fn encode_response(resp: &Response) -> Option<Vec<u8>> {
    let mut out = vec![FLEET_WIRE_VERSION];
    match resp {
        Response::Welcome(spec) => {
            out.push(TAG_WELCOME);
            put_str16(&mut out, &spec.bin)?;
            put_str16(&mut out, &spec.scale)?;
            put_u32(&mut out, spec.shards);
            put_str16(&mut out, &spec.world_key)?;
            let n = u32::try_from(spec.extra.len()).ok()?;
            put_u32(&mut out, n);
            for arg in &spec.extra {
                put_str16(&mut out, arg)?;
            }
        }
        Response::Ack => out.push(TAG_ACK),
        Response::Job { slice, shards } => {
            out.push(TAG_JOB);
            put_u32(&mut out, *slice);
            put_u32(&mut out, *shards);
        }
        Response::Wait { millis } => {
            out.push(TAG_WAIT);
            put_u64(&mut out, *millis);
        }
        Response::Drained => out.push(TAG_DRAINED),
        Response::Keys { keys } => {
            out.push(TAG_KEYS);
            let n = u32::try_from(keys.len()).ok()?;
            put_u32(&mut out, n);
            for key in keys {
                put_str16(&mut out, key)?;
            }
        }
        Response::Chunk {
            total_len,
            chunks,
            content_hash,
            bytes,
        } => {
            out.push(TAG_CHUNK);
            put_u64(&mut out, *total_len);
            put_u32(&mut out, *chunks);
            put_u64(&mut out, *content_hash);
            put_bytes32(&mut out, bytes)?;
        }
        Response::Lost => out.push(TAG_LOST),
        Response::Error { code, message } => {
            out.push(TAG_ERROR);
            out.extend_from_slice(&code.to_u16().to_le_bytes());
            // Truncate pathological messages (char-boundary-safe, like the
            // serve wire) rather than failing to deliver an error at all.
            let mut cut = message.len().min(u16::MAX as usize);
            while cut > 0 && !message.is_char_boundary(cut) {
                cut -= 1;
            }
            put_str32(&mut out, &message[..cut])?;
        }
    }
    Some(out)
}

/// Decodes a response body; `None` on any truncation or inconsistency.
pub fn decode_response(mut body: &[u8]) -> Option<Response> {
    let r = &mut body;
    let (head, rest) = r.split_first_chunk::<2>()?;
    *r = rest;
    let [version, tag] = *head;
    if version != FLEET_WIRE_VERSION {
        return None;
    }
    let resp = match tag {
        TAG_WELCOME => {
            let bin = take_str16(r)?;
            let scale = take_str16(r)?;
            let shards = take_u32(r)?;
            let world_key = take_str16(r)?;
            let n = take_u32(r)? as usize;
            // Each entry needs at least its 2-byte length prefix.
            if r.len() < n.checked_mul(2)? {
                return None;
            }
            let extra: Vec<String> = (0..n).map(|_| take_str16(r)).collect::<Option<_>>()?;
            Response::Welcome(FleetSpec {
                bin,
                scale,
                shards,
                world_key,
                extra,
            })
        }
        TAG_ACK => Response::Ack,
        TAG_JOB => Response::Job {
            slice: take_u32(r)?,
            shards: take_u32(r)?,
        },
        TAG_WAIT => Response::Wait {
            millis: take_u64(r)?,
        },
        TAG_DRAINED => Response::Drained,
        TAG_KEYS => {
            let n = take_u32(r)? as usize;
            if r.len() < n.checked_mul(2)? {
                return None;
            }
            let keys: Vec<String> = (0..n).map(|_| take_str16(r)).collect::<Option<_>>()?;
            Response::Keys { keys }
        }
        TAG_CHUNK => Response::Chunk {
            total_len: take_u64(r)?,
            chunks: take_u32(r)?,
            content_hash: take_u64(r)?,
            bytes: take_bytes32(r)?,
        },
        TAG_LOST => Response::Lost,
        TAG_ERROR => {
            let (head, rest) = r.split_first_chunk::<2>()?;
            *r = rest;
            let code = ErrorCode::from_u16(u16::from_le_bytes(*head))?;
            let message = take_str32(r)?;
            Response::Error { code, message }
        }
        _ => return None,
    };
    if !r.is_empty() {
        return None;
    }
    Some(resp)
}

/// One synchronous request/response exchange over a framed transport —
/// the worker half of the protocol.
///
/// # Errors
///
/// [`FleetError::Protocol`] if the request does not encode or the
/// response does not decode, [`FleetError::Io`] on transport errors
/// (including an unexpected EOF before the response).
pub fn call(
    stream: &mut (impl std::io::Read + std::io::Write),
    req: &Request,
) -> Result<Response, crate::FleetError> {
    let body = encode_request(req).ok_or_else(|| crate::FleetError::Protocol {
        detail: "request does not fit its wire length fields".to_string(),
    })?;
    write_frame(stream, &body)?;
    let body = read_frame(stream)?.ok_or_else(|| {
        crate::FleetError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "coordinator closed the connection before responding",
        ))
    })?;
    decode_response(&body).ok_or_else(|| crate::FleetError::Protocol {
        detail: "undecodable response frame".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FleetSpec {
        FleetSpec {
            bin: "fig2_memory_tradeoff".into(),
            scale: "tiny".into(),
            shards: 2,
            world_key: "world_v1_00000000deadbeef.bin".into(),
            extra: vec!["--fresh".into(), "--knobs=3".into()],
        }
    }

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Hello {
                worker: "worker-a".into(),
            },
            Request::Lease,
            Request::Heartbeat { slice: 7 },
            Request::CacheKeys,
            Request::CacheGet {
                key: "world_v1_00000000deadbeef.bin".into(),
                chunk: 3,
            },
            Request::PushRows {
                slice: 1,
                name: "rows_sst2_tiny.shard1of2.jsonl".into(),
                bytes: vec![1, 2, 3, 0xff],
            },
            Request::Complete { slice: 0 },
            Request::Failed {
                slice: 1,
                message: "shard exited with status 101".into(),
            },
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Welcome(spec()),
            Response::Ack,
            Response::Job {
                slice: 1,
                shards: 2,
            },
            Response::Wait { millis: 250 },
            Response::Drained,
            Response::Keys {
                keys: vec!["a.bin".into(), "b.bin".into()],
            },
            Response::Chunk {
                total_len: 9_000_000,
                chunks: 3,
                content_hash: 0xfeed_f00d,
                bytes: vec![9; 64],
            },
            Response::Lost,
            Response::Error {
                code: ErrorCode::UnknownKey,
                message: "no such key".into(),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in all_requests() {
            let body = encode_request(&req).expect("encode");
            assert_eq!(decode_request(&body), Some(req.clone()), "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in all_responses() {
            let body = encode_response(&resp).expect("encode");
            assert_eq!(decode_response(&body), Some(resp.clone()), "{resp:?}");
        }
    }

    #[test]
    fn truncations_decode_to_none() {
        for req in all_requests() {
            let body = encode_request(&req).expect("encode");
            for cut in 0..body.len() {
                assert!(
                    decode_request(&body[..cut]).is_none(),
                    "{req:?} cut at {cut} must not decode"
                );
            }
        }
        for resp in all_responses() {
            let body = encode_response(&resp).expect("encode");
            for cut in 0..body.len() {
                assert!(
                    decode_response(&body[..cut]).is_none(),
                    "{resp:?} cut at {cut} must not decode"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_bad_versions_and_bad_tags_are_rejected() {
        let mut body = encode_request(&Request::Lease).expect("encode");
        body.push(0);
        assert!(decode_request(&body).is_none(), "trailing byte");
        let mut body = encode_request(&Request::Lease).expect("encode");
        body[0] = FLEET_WIRE_VERSION + 1;
        assert!(decode_request(&body).is_none(), "future version");
        let mut body = encode_request(&Request::Lease).expect("encode");
        body[1] = 200;
        assert!(decode_request(&body).is_none(), "unknown op");
        let mut body = encode_response(&Response::Ack).expect("encode");
        body[1] = 250;
        assert!(decode_response(&body).is_none(), "unknown tag");
        let mut body = encode_response(&Response::Error {
            code: ErrorCode::Malformed,
            message: String::new(),
        })
        .expect("encode");
        body[2] = 0xFF;
        assert!(decode_response(&body).is_none(), "unknown error code");
    }

    #[test]
    fn keys_count_is_checked_against_remaining_bytes() {
        // A claimed huge key count with no payload must not allocate or
        // loop; it fails the length pre-check.
        let mut body = vec![FLEET_WIRE_VERSION, TAG_KEYS];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_response(&body).is_none());
    }

    #[test]
    fn error_messages_truncate_on_char_boundaries() {
        let long = "é".repeat(60_000); // 2 bytes per char, past u16::MAX
        let body = encode_response(&Response::Error {
            code: ErrorCode::Internal,
            message: long,
        })
        .expect("encode");
        let Some(Response::Error { message, .. }) = decode_response(&body) else {
            panic!("must decode");
        };
        assert!(message.len() <= u16::MAX as usize);
        assert!(!message.is_empty());
    }
}
