//! The coordinator's work queue: slices, leases, and capped-backoff retry.
//!
//! Each slice `0..shards` moves through `Ready → Leased → Done`, with a
//! failure edge back to `Ready` that burns one attempt and delays the
//! slice by an exponentially growing, capped backoff. A slice that burns
//! [`QueueConfig::max_attempts`] attempts poisons the queue: the fleet
//! has failed and [`WorkQueue::exhausted`] names the culprit.
//!
//! Time is **injected**: every method takes `now_ms` and the queue never
//! reads a clock (the `no-wallclock-in-fingerprint` lint covers this
//! crate). The bench binaries supply a monotonic epoch; tests supply
//! synthetic instants, which makes timeout behaviour deterministic to
//! test.
//!
//! Leases are held by worker *name*, not connection: a worker that
//! reconnects after a crash re-sends `Hello` and the coordinator calls
//! [`WorkQueue::release_worker`] to requeue whatever its dead predecessor
//! held, without waiting out the lease timeout.

use std::collections::BTreeMap;

/// Retry and lease tuning for a fleet run.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// A lease with no heartbeat for this long is expired and requeued.
    pub lease_timeout_ms: u64,
    /// Dispatch attempts per slice before the fleet fails.
    pub max_attempts: u32,
    /// Backoff before redispatch no. 2 (doubles per failure).
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig {
            lease_timeout_ms: 30_000,
            max_attempts: 5,
            backoff_base_ms: 200,
            backoff_cap_ms: 10_000,
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum SliceState {
    /// Dispatchable once `now_ms >= available_at_ms`.
    Ready { available_at_ms: u64 },
    /// Held by a worker until heartbeats stop.
    Leased { worker: String, expires_ms: u64 },
    /// Committed; never dispatched again.
    Done,
}

/// What a `Lease` request gets back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LeaseOutcome {
    /// Run this slice.
    Job {
        /// The granted slice.
        slice: u32,
    },
    /// Nothing dispatchable yet; retry after this delay.
    Wait {
        /// Milliseconds until the nearest slice frees up (or a probe
        /// interval when everything is leased out).
        millis: u64,
    },
    /// Every slice is done.
    Drained,
    /// A slice ran out of attempts; the fleet has failed.
    Exhausted {
        /// The slice that could not be completed.
        slice: u32,
        /// The attempts it burned.
        attempts: u32,
    },
}

/// The coordinator's slice ledger. Single-threaded by design — the
/// coordinator wraps it in a lock; the queue itself holds no clock and
/// spawns nothing.
#[derive(Debug)]
pub struct WorkQueue {
    config: QueueConfig,
    slices: Vec<SliceState>,
    /// Dispatch attempts burned per slice (indexed like `slices`).
    attempts: Vec<u32>,
    /// First slice to exceed the attempt cap, with its attempt count.
    exhausted: Option<(u32, u32)>,
}

impl WorkQueue {
    /// A queue with `shards` slices, all immediately dispatchable.
    pub fn new(shards: u32, config: QueueConfig) -> WorkQueue {
        let n = shards as usize;
        WorkQueue {
            config,
            slices: vec![SliceState::Ready { available_at_ms: 0 }; n],
            attempts: vec![0; n],
            exhausted: None,
        }
    }

    /// The first slice to run out of attempts, if any, as
    /// `(slice, attempts)`. Once set, the queue refuses further leases.
    pub fn exhausted(&self) -> Option<(u32, u32)> {
        self.exhausted
    }

    /// True when every slice is `Done`.
    pub fn is_drained(&self) -> bool {
        self.slices.iter().all(|s| matches!(s, SliceState::Done))
    }

    /// The worker currently holding `slice`, if it is leased.
    pub fn holder(&self, slice: u32) -> Option<&str> {
        match self.slices.get(slice as usize)? {
            SliceState::Leased { worker, .. } => Some(worker),
            _ => None,
        }
    }

    /// Requeues every lease whose heartbeat deadline has passed. Returns
    /// the slices that expired (already requeued with backoff).
    pub fn expire(&mut self, now_ms: u64) -> Vec<u32> {
        let mut expired = Vec::new();
        for i in 0..self.slices.len() {
            if let SliceState::Leased { expires_ms, .. } = &self.slices[i] {
                if *expires_ms <= now_ms {
                    // Indexing with a loop-bound index; u32 per the ctor.
                    let slice = i as u32;
                    self.requeue(slice, now_ms);
                    expired.push(slice);
                }
            }
        }
        expired
    }

    /// Grants the oldest dispatchable slice to `worker`, or says why not.
    /// Expired leases are swept first, so a caller needs no separate
    /// `expire` cadence.
    pub fn lease(&mut self, worker: &str, now_ms: u64) -> LeaseOutcome {
        self.expire(now_ms);
        if let Some((slice, attempts)) = self.exhausted {
            return LeaseOutcome::Exhausted { slice, attempts };
        }
        let mut nearest: Option<u64> = None;
        for (i, state) in self.slices.iter_mut().enumerate() {
            if let SliceState::Ready { available_at_ms } = state {
                if *available_at_ms <= now_ms {
                    let slice = i as u32;
                    self.attempts[i] += 1;
                    *state = SliceState::Leased {
                        worker: worker.to_string(),
                        expires_ms: now_ms.saturating_add(self.config.lease_timeout_ms),
                    };
                    return LeaseOutcome::Job { slice };
                }
                let wait = *available_at_ms - now_ms;
                nearest = Some(nearest.map_or(wait, |n| n.min(wait)));
            }
        }
        if self.is_drained() {
            return LeaseOutcome::Drained;
        }
        // Backed-off slices dictate the wait; with everything leased out,
        // probe at a fraction of the lease timeout.
        let millis = nearest.unwrap_or_else(|| (self.config.lease_timeout_ms / 4).max(1));
        LeaseOutcome::Wait { millis }
    }

    /// Extends `worker`'s lease on `slice`. False if the lease is no
    /// longer theirs (expired and moved on) — the worker must drop the
    /// work.
    pub fn heartbeat(&mut self, worker: &str, slice: u32, now_ms: u64) -> bool {
        self.expire(now_ms);
        match self.slices.get_mut(slice as usize) {
            Some(SliceState::Leased {
                worker: holder,
                expires_ms,
            }) if holder == worker => {
                *expires_ms = now_ms.saturating_add(self.config.lease_timeout_ms);
                true
            }
            _ => false,
        }
    }

    /// Marks `slice` done if `worker` still holds it. False means the
    /// lease was lost and the completion must be discarded.
    pub fn complete(&mut self, worker: &str, slice: u32, now_ms: u64) -> bool {
        self.expire(now_ms);
        match self.slices.get_mut(slice as usize) {
            Some(state @ SliceState::Leased { .. }) => {
                let held = matches!(state, SliceState::Leased { worker: h, .. } if h == worker);
                if held {
                    *state = SliceState::Done;
                }
                held
            }
            _ => false,
        }
    }

    /// Reports `worker`'s run of `slice` as failed; requeues it with
    /// backoff if the lease is still theirs. False if the lease was
    /// already lost (the slice is requeued either way in that case).
    pub fn fail(&mut self, worker: &str, slice: u32, now_ms: u64) -> bool {
        self.expire(now_ms);
        let held = matches!(
            self.slices.get(slice as usize),
            Some(SliceState::Leased { worker: h, .. }) if h == worker
        );
        if held {
            self.requeue(slice, now_ms);
        }
        held
    }

    /// Requeues every slice `worker` holds — the connection-drop path and
    /// the re-`Hello` path. Returns the slices released.
    pub fn release_worker(&mut self, worker: &str, now_ms: u64) -> Vec<u32> {
        let mut released = Vec::new();
        for i in 0..self.slices.len() {
            if matches!(&self.slices[i], SliceState::Leased { worker: h, .. } if h == worker) {
                let slice = i as u32;
                self.requeue(slice, now_ms);
                released.push(slice);
            }
        }
        released
    }

    /// Attempts burned per slice, keyed by slice, for end-of-run logging.
    pub fn attempt_counts(&self) -> BTreeMap<u32, u32> {
        self.attempts
            .iter()
            .enumerate()
            .map(|(i, &a)| (i as u32, a))
            .collect()
    }

    /// Puts a leased slice back to `Ready` with capped exponential
    /// backoff, or poisons the queue if its attempts are spent.
    fn requeue(&mut self, slice: u32, now_ms: u64) {
        let i = slice as usize;
        let attempts = match self.attempts.get(i) {
            Some(&a) => a,
            None => return,
        };
        if attempts >= self.config.max_attempts {
            if self.exhausted.is_none() {
                self.exhausted = Some((slice, attempts));
            }
            // Leave it Ready-but-never-dispatched: `lease` checks
            // `exhausted` before scanning.
        }
        let shift = attempts.saturating_sub(1).min(u32::BITS - 1);
        let backoff = self
            .config
            .backoff_base_ms
            .checked_shl(shift)
            .unwrap_or(self.config.backoff_cap_ms)
            .min(self.config.backoff_cap_ms);
        if let Some(state) = self.slices.get_mut(i) {
            *state = SliceState::Ready {
                available_at_ms: now_ms.saturating_add(backoff),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> QueueConfig {
        QueueConfig {
            lease_timeout_ms: 1_000,
            max_attempts: 3,
            backoff_base_ms: 100,
            backoff_cap_ms: 400,
        }
    }

    #[test]
    fn leases_every_slice_once_then_waits_then_drains() {
        let mut q = WorkQueue::new(2, config());
        assert_eq!(q.lease("a", 0), LeaseOutcome::Job { slice: 0 });
        assert_eq!(q.lease("b", 0), LeaseOutcome::Job { slice: 1 });
        assert!(matches!(q.lease("c", 0), LeaseOutcome::Wait { .. }));
        assert!(q.complete("a", 0, 10));
        assert!(q.complete("b", 1, 10));
        assert!(q.is_drained());
        assert_eq!(q.lease("a", 10), LeaseOutcome::Drained);
    }

    #[test]
    fn missed_heartbeats_expire_the_lease_and_redispatch() {
        let mut q = WorkQueue::new(1, config());
        assert_eq!(q.lease("a", 0), LeaseOutcome::Job { slice: 0 });
        assert!(q.heartbeat("a", 0, 500));
        // Heartbeat extended the deadline to 1_500; it lapses at 1_500.
        assert!(matches!(q.lease("b", 1_400), LeaseOutcome::Wait { .. }));
        // First requeue carries backoff_base (attempts=1 → shift 0).
        assert!(matches!(q.lease("b", 1_500), LeaseOutcome::Wait { millis } if millis == 100));
        assert_eq!(q.lease("b", 1_600), LeaseOutcome::Job { slice: 0 });
        // The original holder has lost the lease.
        assert!(!q.heartbeat("a", 0, 1_650));
        assert!(!q.complete("a", 0, 1_650));
        assert!(q.complete("b", 0, 1_700));
        assert!(q.is_drained());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut q = WorkQueue::new(1, config());
        let mut now = 0;
        let mut delays = Vec::new();
        for _ in 0..2 {
            assert_eq!(q.lease("a", now), LeaseOutcome::Job { slice: 0 });
            assert!(q.fail("a", 0, now));
            let LeaseOutcome::Wait { millis } = q.lease("a", now) else {
                panic!("expected backoff wait");
            };
            delays.push(millis);
            now += millis;
        }
        // attempts 1, 2 → 100ms, 200ms; a third failure exhausts at
        // max_attempts=3, so the doubling sequence caps the test here.
        assert_eq!(delays, vec![100, 200]);
        assert_eq!(q.lease("a", now), LeaseOutcome::Job { slice: 0 });
        assert!(q.fail("a", 0, now));
        assert!(matches!(
            q.lease("a", now),
            LeaseOutcome::Exhausted {
                slice: 0,
                attempts: 3
            }
        ));
        assert_eq!(q.exhausted(), Some((0, 3)));
    }

    #[test]
    fn backoff_cap_applies_with_generous_attempt_budget() {
        let mut q = WorkQueue::new(
            1,
            QueueConfig {
                max_attempts: 10,
                ..config()
            },
        );
        let mut now = 0;
        let mut last = 0;
        for _ in 0..6 {
            assert!(matches!(q.lease("a", now), LeaseOutcome::Job { .. }));
            assert!(q.fail("a", 0, now));
            let LeaseOutcome::Wait { millis } = q.lease("a", now) else {
                panic!("expected backoff wait");
            };
            last = millis;
            now += millis;
        }
        assert_eq!(last, 400, "backoff must stop at the cap");
    }

    #[test]
    fn release_worker_requeues_only_that_workers_leases() {
        let mut q = WorkQueue::new(3, config());
        assert_eq!(q.lease("a", 0), LeaseOutcome::Job { slice: 0 });
        assert_eq!(q.lease("b", 0), LeaseOutcome::Job { slice: 1 });
        assert_eq!(q.lease("a", 0), LeaseOutcome::Job { slice: 2 });
        assert_eq!(q.release_worker("a", 10), vec![0, 2]);
        assert_eq!(q.holder(1), Some("b"));
        assert_eq!(q.holder(0), None);
        // Released slices come back after their backoff.
        assert_eq!(q.lease("c", 10 + 100), LeaseOutcome::Job { slice: 0 });
    }

    #[test]
    fn completion_from_a_non_holder_is_rejected() {
        let mut q = WorkQueue::new(1, config());
        assert_eq!(q.lease("a", 0), LeaseOutcome::Job { slice: 0 });
        assert!(!q.complete("b", 0, 1));
        assert!(!q.fail("b", 0, 1));
        assert!(q.heartbeat("a", 0, 1), "holder unaffected by impostors");
        assert!(!q.complete("a", 99, 1), "out-of-range slice");
    }

    #[test]
    fn attempt_counts_reflect_dispatches() {
        let mut q = WorkQueue::new(2, config());
        assert_eq!(q.lease("a", 0), LeaseOutcome::Job { slice: 0 });
        assert!(q.fail("a", 0, 0));
        assert_eq!(q.lease("a", 100), LeaseOutcome::Job { slice: 0 });
        assert!(q.complete("a", 0, 100));
        assert_eq!(q.lease("a", 100), LeaseOutcome::Job { slice: 1 });
        assert!(q.complete("a", 1, 100));
        let counts = q.attempt_counts();
        assert_eq!(counts.get(&0), Some(&2));
        assert_eq!(counts.get(&1), Some(&1));
    }
}
