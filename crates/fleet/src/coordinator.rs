//! The fleet coordinator: serves the work queue and the cache store over
//! TCP, stages pushed rows, and commits them only on completion.
//!
//! Thread-per-connection, mirroring `embedstab_serve::server`: an accept
//! thread spawns one handler per worker connection; the caller's thread
//! sits in [`run_coordinator`] polling the queue until it drains or a
//! slice exhausts its attempts. Time is injected (`now_ms` closure) so
//! this crate never reads a clock; the bench binary supplies a monotonic
//! epoch.
//!
//! Correctness properties, pinned by `crates/bench/tests/fleet.rs`:
//!
//! - **No panics on worker bytes.** Malformed frames, unknown ops, bad
//!   keys, out-of-range chunks and slices all become typed
//!   [`wire::ErrorCode`] responses.
//! - **Staged commits.** `PushRows` lands in memory, keyed by slice, and
//!   is accepted only from the slice's current leaseholder; granting a
//!   slice clears its staging. Row files reach `results_dir` (atomically)
//!   only when `Complete` arrives while the lease is still held — a
//!   worker that dies mid-slice leaves **zero** bytes on disk, which is
//!   what makes the re-dispatched merge bitwise equal to an unsharded
//!   run.
//! - **Crash-fast re-dispatch.** A dropped connection releases every
//!   lease its worker held (no need to wait out the heartbeat timeout);
//!   heartbeat expiry covers hangs.

use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use embedstab_pipeline::cache::atomic_write;
use embedstab_pipeline::{store, CacheStore};
use parking_lot::Mutex;

use crate::queue::{LeaseOutcome, QueueConfig, WorkQueue};
use crate::transfer::chunk_range;
use crate::wire::{self, ErrorCode, FleetSpec, Request, Response};
use crate::FleetError;

/// One pushed row file may not exceed this (staged in memory until
/// commit; a frame caps near 16 MiB anyway).
const MAX_ROW_FILE_BYTES: usize = 12 << 20;

/// Everything a coordinator run needs beyond the listener and the store.
pub struct CoordinatorConfig {
    /// What every worker is told to run.
    pub spec: FleetSpec,
    /// Lease/retry tuning.
    pub queue: QueueConfig,
    /// Per-connection socket read/write timeouts (`None` = blocking
    /// forever). Should comfortably exceed the workers' poll cadence.
    pub io_timeout: Option<Duration>,
    /// Where committed row files land (the merge reads them from here).
    pub results_dir: PathBuf,
    /// How long to keep answering `Drained` after the last commit, so
    /// polling workers learn the fleet is done before the socket closes.
    pub linger: Duration,
    /// Poll cadence of the supervising loop.
    pub poll: Duration,
}

impl CoordinatorConfig {
    /// A config with library defaults for everything but the spec and
    /// results directory.
    pub fn new(spec: FleetSpec, results_dir: PathBuf) -> CoordinatorConfig {
        CoordinatorConfig {
            spec,
            queue: QueueConfig::default(),
            io_timeout: Some(Duration::from_secs(60)),
            results_dir,
            linger: Duration::from_millis(1_000),
            poll: Duration::from_millis(25),
        }
    }
}

struct Shared {
    spec: FleetSpec,
    store: CacheStore,
    queue: Mutex<WorkQueue>,
    /// Pushed-but-uncommitted row files: slice → name → bytes. Cleared
    /// when the slice is granted (fresh dispatch starts clean), drained
    /// to disk on `Complete` from the holder.
    staged: Mutex<BTreeMap<u32, BTreeMap<String, Vec<u8>>>>,
    results_dir: PathBuf,
    /// Set once the queue drains — `Lease` answers `Drained` from then on.
    drained: AtomicBool,
    /// Set once a slice exhausts its attempts — `Lease` answers a
    /// `FleetFailed` error from then on.
    failed: AtomicBool,
    shutdown: AtomicBool,
    now_ms: Box<dyn Fn() -> u64 + Send + Sync>,
    io_timeout: Option<Duration>,
}

/// Runs a fleet to completion: accepts workers on `listener`, dispatches
/// every slice of `config.spec`, and returns once all row files are
/// committed under `config.results_dir` (after a short linger so workers
/// hear `Drained`).
///
/// `now_ms` must be monotonic; it is the only clock the coordinator has.
///
/// # Errors
///
/// [`FleetError::Exhausted`] when a slice burns through
/// [`QueueConfig::max_attempts`], [`FleetError::Io`] if the listener
/// cannot be inspected or the accept thread cannot spawn.
pub fn run_coordinator(
    listener: TcpListener,
    store: CacheStore,
    config: CoordinatorConfig,
    now_ms: impl Fn() -> u64 + Send + Sync + 'static,
) -> Result<(), FleetError> {
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        queue: Mutex::new(WorkQueue::new(config.spec.shards, config.queue)),
        spec: config.spec,
        store,
        staged: Mutex::new(BTreeMap::new()),
        results_dir: config.results_dir,
        drained: AtomicBool::new(false),
        failed: AtomicBool::new(false),
        shutdown: AtomicBool::new(false),
        now_ms: Box::new(now_ms),
        io_timeout: config.io_timeout,
    });
    let accept_shared = shared.clone();
    thread::Builder::new()
        .name("fleet-accept".into())
        .spawn(move || accept_loop(&listener, &accept_shared))?;
    let outcome = loop {
        let now = (shared.now_ms)();
        let (drained, exhausted, expired) = {
            let mut queue = shared.queue.lock();
            (queue.is_drained(), queue.exhausted(), queue.expire(now))
        };
        for slice in expired {
            eprintln!("[fleet] lease on slice {slice} expired; requeued");
        }
        if let Some((slice, attempts)) = exhausted {
            shared.failed.store(true, Ordering::SeqCst);
            break Err(FleetError::Exhausted { slice, attempts });
        }
        if drained {
            shared.drained.store(true, Ordering::SeqCst);
            break Ok(());
        }
        thread::sleep(config.poll);
    };
    // Let polling workers hear Drained / FleetFailed before the socket
    // disappears.
    thread::sleep(config.linger);
    shared.shutdown.store(true, Ordering::SeqCst);
    // Unblock the accept loop with one throwaway connection.
    TcpStream::connect(addr).ok();
    outcome
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(shared.io_timeout).ok();
        stream.set_write_timeout(shared.io_timeout).ok();
        let shared = shared.clone();
        // A failed thread spawn drops the connection; the fleet lives on
        // (the worker reconnects).
        thread::Builder::new()
            .name("fleet-conn".into())
            .spawn(move || connection_loop(stream, &shared))
            .ok();
    }
}

/// Per-connection state: the worker's declared name (set by `Hello`) and
/// a one-file cache for chunked pulls so a 100-chunk transfer does not
/// re-read and re-verify the file 100 times.
struct Connection {
    worker: Option<String>,
    served_file: Option<(String, Arc<Vec<u8>>)>,
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    let mut conn = Connection {
        worker: None,
        served_file: None,
    };
    loop {
        let body = match wire::read_frame(&mut stream) {
            Ok(Some(body)) => body,
            // EOF or transport error: the worker is gone. Its leases go
            // straight back to the queue — no heartbeat wait.
            Ok(None) | Err(_) => break,
        };
        let response = match wire::decode_request(&body) {
            None => Response::Error {
                code: ErrorCode::Malformed,
                message: "request body did not decode".into(),
            },
            Some(req) => dispatch(shared, &mut conn, req),
        };
        let Some(out) = wire::encode_response(&response) else {
            break;
        };
        if wire::write_frame(&mut stream, &out).is_err() {
            break;
        }
    }
    if let Some(worker) = &conn.worker {
        release(shared, worker, "disconnected");
    }
}

/// Requeues every lease `worker` holds (connection drop or re-`Hello`).
fn release(shared: &Arc<Shared>, worker: &str, why: &str) {
    let now = (shared.now_ms)();
    let released = shared.queue.lock().release_worker(worker, now);
    for slice in &released {
        eprintln!("[fleet] worker '{worker}' {why}; slice {slice} requeued");
    }
}

fn dispatch(shared: &Arc<Shared>, conn: &mut Connection, req: Request) -> Response {
    if let Request::Hello { worker } = &req {
        // A reconnect under the same name frees whatever the previous
        // incarnation held, instead of waiting out its lease.
        release(shared, worker, "reconnected");
        conn.worker = Some(worker.clone());
        return Response::Welcome(shared.spec.clone());
    }
    let Some(worker) = conn.worker.clone() else {
        return Response::Error {
            code: ErrorCode::MustHello,
            message: "send Hello before any other request".into(),
        };
    };
    let now = (shared.now_ms)();
    match req {
        Request::Hello { .. } => Response::Error {
            code: ErrorCode::Internal,
            message: "unreachable: Hello handled above".into(),
        },
        Request::Lease => {
            if shared.failed.load(Ordering::SeqCst) {
                return Response::Error {
                    code: ErrorCode::FleetFailed,
                    message: "a slice ran out of dispatch attempts".into(),
                };
            }
            if shared.drained.load(Ordering::SeqCst) {
                return Response::Drained;
            }
            // Hoisted out of the match scrutinee: a scrutinee temporary
            // would hold the queue guard through every arm, pinning it
            // across the staged-map lock and console IO below.
            let outcome = shared.queue.lock().lease(&worker, now);
            match outcome {
                LeaseOutcome::Job { slice } => {
                    // A fresh dispatch starts with clean staging — any
                    // partial pushes from a dead predecessor vanish here.
                    shared.staged.lock().remove(&slice);
                    eprintln!("[fleet] slice {slice} leased to '{worker}'");
                    Response::Job {
                        slice,
                        shards: shared.spec.shards,
                    }
                }
                LeaseOutcome::Wait { millis } => Response::Wait { millis },
                LeaseOutcome::Drained => {
                    shared.drained.store(true, Ordering::SeqCst);
                    Response::Drained
                }
                LeaseOutcome::Exhausted { slice, attempts } => {
                    shared.failed.store(true, Ordering::SeqCst);
                    Response::Error {
                        code: ErrorCode::FleetFailed,
                        message: format!("slice {slice} failed {attempts} dispatch attempts"),
                    }
                }
            }
        }
        Request::Heartbeat { slice } => {
            if slice >= shared.spec.shards {
                return unknown_slice(slice, shared.spec.shards);
            }
            if shared.queue.lock().heartbeat(&worker, slice, now) {
                Response::Ack
            } else {
                Response::Lost
            }
        }
        Request::CacheKeys => match shared.store.keys() {
            Ok(keys) => Response::Keys { keys },
            Err(e) => Response::Error {
                code: ErrorCode::Internal,
                message: format!("listing cache keys failed: {e}"),
            },
        },
        Request::CacheGet { key, chunk } => serve_chunk(shared, conn, &key, chunk),
        Request::PushRows { slice, name, bytes } => {
            if slice >= shared.spec.shards {
                return unknown_slice(slice, shared.spec.shards);
            }
            if shared.queue.lock().holder(slice) != Some(worker.as_str()) {
                return Response::Lost;
            }
            if let Some(detail) = row_file_objection(&name, slice, shared.spec.shards, &bytes) {
                return Response::Error {
                    code: ErrorCode::BadRowFile,
                    message: detail,
                };
            }
            shared
                .staged
                .lock()
                .entry(slice)
                .or_default()
                .insert(name, bytes);
            Response::Ack
        }
        Request::Complete { slice } => {
            if slice >= shared.spec.shards {
                return unknown_slice(slice, shared.spec.shards);
            }
            if !shared.queue.lock().complete(&worker, slice, now) {
                return Response::Lost;
            }
            let files = shared.staged.lock().remove(&slice).unwrap_or_default();
            let count = files.len();
            for (name, bytes) in files {
                let path = shared.results_dir.join(&name);
                if let Err(e) = atomic_write(&path, &bytes) {
                    return Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("committing '{name}' failed: {e}"),
                    };
                }
            }
            eprintln!("[fleet] slice {slice} complete: {count} row file(s) committed");
            Response::Ack
        }
        Request::Failed { slice, message } => {
            if slice >= shared.spec.shards {
                return unknown_slice(slice, shared.spec.shards);
            }
            eprintln!("[fleet] worker '{worker}' failed slice {slice}: {message}");
            shared.queue.lock().fail(&worker, slice, now);
            Response::Ack
        }
    }
}

fn unknown_slice(slice: u32, shards: u32) -> Response {
    Response::Error {
        code: ErrorCode::UnknownSlice,
        message: format!("slice {slice} is outside 0..{shards}"),
    }
}

/// Why a pushed row file is unacceptable, or `None` if it is fine. The
/// name must be a bare `<stem>.shard<i>of<n>.jsonl` whose suffix agrees
/// with the leased slice and the fleet's shard count.
fn row_file_objection(name: &str, slice: u32, shards: u32, bytes: &[u8]) -> Option<String> {
    if bytes.len() > MAX_ROW_FILE_BYTES {
        return Some(format!(
            "row file '{name}' is {} bytes (cap {MAX_ROW_FILE_BYTES})",
            bytes.len()
        ));
    }
    if name.contains('/') || name.contains('\\') || name.contains("..") {
        return Some(format!("row file name '{name}' is not a bare file name"));
    }
    match parse_shard_name(name) {
        Some((i, n)) if i == slice && n == shards => None,
        Some((i, n)) => Some(format!(
            "row file '{name}' claims shard {i}of{n}, lease is {slice}of{shards}"
        )),
        None => Some(format!(
            "row file '{name}' does not match <stem>.shard<i>of<n>.jsonl"
        )),
    }
}

/// Parses `<stem>.shard<i>of<n>.jsonl` into `(i, n)` — the fleet-local
/// twin of the bench crate's path-based `parse_shard_suffix` (this crate
/// sits below bench in the dependency order).
pub(crate) fn parse_shard_name(name: &str) -> Option<(u32, u32)> {
    let stem = name.strip_suffix(".jsonl")?;
    let (_, suffix) = stem.rsplit_once('.')?;
    let rest = suffix.strip_prefix("shard")?;
    let (i, n) = rest.split_once("of")?;
    if i.is_empty() || n.is_empty() || !i.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((i.parse().ok()?, n.parse().ok()?))
}

fn serve_chunk(shared: &Arc<Shared>, conn: &mut Connection, key: &str, chunk: u32) -> Response {
    if store::parse_key(key).is_none() {
        return Response::Error {
            code: ErrorCode::BadKey,
            message: format!("'{key}' is not a well-formed cache key"),
        };
    }
    let bytes = match &conn.served_file {
        Some((k, bytes)) if k == key => bytes.clone(),
        _ => match shared.store.get(key) {
            Ok(Some(bytes)) => {
                let bytes = Arc::new(bytes);
                conn.served_file = Some((key.to_string(), bytes.clone()));
                bytes
            }
            Ok(None) => {
                return Response::Error {
                    code: ErrorCode::UnknownKey,
                    message: format!("cache key '{key}' is not present"),
                }
            }
            Err(e) => {
                return Response::Error {
                    code: ErrorCode::Internal,
                    message: format!("reading '{key}' failed: {e}"),
                }
            }
        },
    };
    let Some(range) = chunk_range(bytes.len(), chunk) else {
        return Response::Error {
            code: ErrorCode::ChunkOutOfRange,
            message: format!(
                "chunk {chunk} is out of range for '{key}' ({} bytes)",
                bytes.len()
            ),
        };
    };
    let total_len = bytes.len() as u64;
    Response::Chunk {
        total_len,
        chunks: crate::transfer::chunk_count(bytes.len()),
        content_hash: embedstab_pipeline::content_hash(&bytes),
        bytes: bytes[range].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_names_parse_and_reject() {
        assert_eq!(
            parse_shard_name("rows_sst2_tiny.shard1of2.jsonl"),
            Some((1, 2))
        );
        assert_eq!(parse_shard_name("a.b.c.shard0of16.jsonl"), Some((0, 16)));
        assert_eq!(parse_shard_name("rows.shardof2.jsonl"), None);
        assert_eq!(parse_shard_name("rows.shard1of.jsonl"), None);
        assert_eq!(parse_shard_name("rows.shard1of2.json"), None);
        assert_eq!(parse_shard_name("shard1of2.jsonl"), None);
        assert_eq!(parse_shard_name("rows.shard-1of2.jsonl"), None);
    }

    #[test]
    fn row_file_objections() {
        assert_eq!(
            row_file_objection("rows_sst2_tiny.shard1of2.jsonl", 1, 2, b"{}"),
            None
        );
        assert!(row_file_objection("../evil.shard1of2.jsonl", 1, 2, b"{}").is_some());
        assert!(row_file_objection("a/b.shard1of2.jsonl", 1, 2, b"{}").is_some());
        assert!(row_file_objection("rows.shard0of2.jsonl", 1, 2, b"{}").is_some());
        assert!(row_file_objection("rows.shard1of4.jsonl", 1, 2, b"{}").is_some());
        assert!(row_file_objection("rows.jsonl", 1, 2, b"{}").is_some());
        let big = vec![0u8; MAX_ROW_FILE_BYTES + 1];
        assert!(row_file_objection("rows.shard1of2.jsonl", 1, 2, &big).is_some());
    }
}
