//! Content-addressed cache shipping: chunked pulls with receipt-time
//! verification.
//!
//! Cache files routinely exceed the 16 MiB frame ceiling, so a pull is a
//! sequence of `CacheGet { key, chunk }` calls. Every `Chunk` response
//! repeats the file's total length, chunk count, and whole-file FNV-1a
//! [`content_hash`] — the puller cross-checks each response against the
//! first, then verifies the assembled bytes twice: the content hash
//! (catches transfer corruption) and the cache header against the key
//! via [`embedstab_pipeline::store::verify`] (catches a coordinator
//! serving the wrong file under a right-looking name). Any mismatch is a
//! typed [`FleetError::CorruptTransfer`] and the bytes never reach disk;
//! [`ensure_key`] re-pulls once before giving up.

use std::io::{Read, Write};

use embedstab_pipeline::{content_hash, CacheStore};

use crate::wire::{call, Request, Response, CHUNK_BYTES};
use crate::FleetError;

/// How many [`CHUNK_BYTES`] chunks a file of `len` bytes spans (an empty
/// file still ships as one empty chunk).
pub fn chunk_count(len: usize) -> u32 {
    let n = len.div_ceil(CHUNK_BYTES).max(1);
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// The byte range of chunk `chunk` within a file of `len` bytes, or
/// `None` past the end.
pub fn chunk_range(len: usize, chunk: u32) -> Option<std::ops::Range<usize>> {
    if chunk >= chunk_count(len) {
        return None;
    }
    let start = (chunk as usize).checked_mul(CHUNK_BYTES)?;
    Some(start..len.min(start.saturating_add(CHUNK_BYTES)))
}

fn corrupt(key: &str, detail: String) -> FleetError {
    FleetError::CorruptTransfer {
        key: key.to_string(),
        detail,
    }
}

/// Pulls `key` from the coordinator over `stream`, chunk by chunk, and
/// returns the verified bytes (content hash and embedded header both
/// checked). Does not touch the local store.
///
/// # Errors
///
/// [`FleetError::CorruptTransfer`] on any verification mismatch,
/// [`FleetError::Remote`] if the coordinator answers with a wire error
/// (e.g. an unknown key), [`FleetError::Io`]/[`FleetError::Protocol`] on
/// transport trouble.
pub fn pull_key(stream: &mut (impl Read + Write), key: &str) -> Result<Vec<u8>, FleetError> {
    let mut bytes: Vec<u8> = Vec::new();
    let mut expect: Option<(u64, u32, u64)> = None;
    let mut chunk = 0u32;
    loop {
        let resp = call(
            stream,
            &Request::CacheGet {
                key: key.to_string(),
                chunk,
            },
        )?;
        let (total_len, chunks, hash, piece) = match resp {
            Response::Chunk {
                total_len,
                chunks,
                content_hash,
                bytes,
            } => (total_len, chunks, content_hash, bytes),
            Response::Error { code, message } => return Err(FleetError::Remote { code, message }),
            other => {
                return Err(FleetError::Protocol {
                    detail: format!("expected Chunk for '{key}', got {other:?}"),
                })
            }
        };
        match expect {
            None => {
                if chunks == 0 {
                    return Err(corrupt(key, "zero chunk count".to_string()));
                }
                expect = Some((total_len, chunks, hash));
            }
            Some(first) => {
                if first != (total_len, chunks, hash) {
                    return Err(corrupt(
                        key,
                        "chunk metadata changed mid-transfer".to_string(),
                    ));
                }
            }
        }
        // Every chunk but the last must be full-sized; the running total
        // is checked against the claim at the end.
        if chunk + 1 < chunks && piece.len() != CHUNK_BYTES {
            return Err(corrupt(
                key,
                format!("short interior chunk {chunk}: {} bytes", piece.len()),
            ));
        }
        bytes.extend_from_slice(&piece);
        chunk += 1;
        if chunk == chunks {
            break;
        }
    }
    let (total_len, _, hash) = match expect {
        Some(e) => e,
        None => return Err(corrupt(key, "no chunks received".to_string())),
    };
    if u64::try_from(bytes.len()).ok() != Some(total_len) {
        return Err(corrupt(
            key,
            format!("assembled {} bytes, expected {total_len}", bytes.len()),
        ));
    }
    if content_hash(&bytes) != hash {
        return Err(corrupt(key, "content hash mismatch".to_string()));
    }
    embedstab_pipeline::store::verify(key, &bytes)
        .map_err(|e| corrupt(key, format!("header does not match key: {e}")))?;
    Ok(bytes)
}

/// Makes sure `key` exists in the local `store`, pulling it from the
/// coordinator if absent. A corrupt transfer is re-pulled once. Returns
/// `true` if a pull happened, `false` if the store already had it.
pub fn ensure_key(
    stream: &mut (impl Read + Write),
    store: &CacheStore,
    key: &str,
) -> Result<bool, FleetError> {
    if store.has(key) {
        return Ok(false);
    }
    let bytes = match pull_key(stream, key) {
        Ok(bytes) => bytes,
        Err(FleetError::CorruptTransfer { key: k, detail }) => {
            eprintln!("[fleet] corrupt transfer of '{k}' ({detail}); re-pulling");
            pull_key(stream, key)?
        }
        Err(e) => return Err(e),
    };
    store.put(key, &bytes)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_math_covers_edges() {
        assert_eq!(chunk_count(0), 1);
        assert_eq!(chunk_count(1), 1);
        assert_eq!(chunk_count(CHUNK_BYTES), 1);
        assert_eq!(chunk_count(CHUNK_BYTES + 1), 2);
        assert_eq!(chunk_count(3 * CHUNK_BYTES), 3);
        assert_eq!(chunk_range(0, 0), Some(0..0));
        assert_eq!(chunk_range(0, 1), None);
        assert_eq!(chunk_range(CHUNK_BYTES + 5, 0), Some(0..CHUNK_BYTES));
        assert_eq!(
            chunk_range(CHUNK_BYTES + 5, 1),
            Some(CHUNK_BYTES..CHUNK_BYTES + 5)
        );
        assert_eq!(chunk_range(CHUNK_BYTES + 5, 2), None);
        // Ranges tile the file exactly.
        let len = 2 * CHUNK_BYTES + 17;
        let mut covered = 0;
        for c in 0..chunk_count(len) {
            let r = chunk_range(len, c).expect("in range");
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, len);
    }
}
