//! The fleet worker: pulls caches by fingerprint, runs leased slices as
//! shard subprocesses, heartbeats, and streams row files back.
//!
//! Lifecycle, per connection:
//!
//! 1. connect (with retries) and `Hello`; the `Welcome` carries the
//!    [`FleetSpec`] — which binary, which scale, how many shards, and
//!    which world-cache key this fleet runs against;
//! 2. make the world cache local ([`ensure_key`]) and opportunistically
//!    pre-pull every pair-cache entry belonging to that world, so a
//!    cold-disk worker starts with exactly the warm state the coordinator
//!    has;
//! 3. lease slices until `Drained`: each `Job` spawns
//!    `<bin> --scale <tag> --shard <i>/<n> --cache-dir … --world-cache …`
//!    in the workdir, polls it while heartbeating the lease, and on
//!    success pushes every `results/*.shard<i>of<n>.jsonl` it produced,
//!    then `Complete`s. A child failure is reported (`Failed`) and the
//!    coordinator re-queues the slice; a `Lost` heartbeat kills the child
//!    and drops the work (someone else owns the slice now).
//!
//! Fault injection for tests and drills: when `FLEET_FAIL_ONCE` names a
//! marker path and the marker does not exist yet, the worker creates it,
//! kills its child mid-slice, and exits with status 43 — simulating a
//! machine death. The second incarnation (or a peer) finds the marker and
//! runs clean.
//!
//! No clock reads here (the wallclock lint covers this crate): heartbeat
//! cadence is accounted by summing sleep intervals, which is as accurate
//! as a lease timeout needs.

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use embedstab_pipeline::store::{parse_key, CacheFamily};
use embedstab_pipeline::CacheStore;

use crate::coordinator::parse_shard_name;
use crate::transfer::ensure_key;
use crate::wire::{call, ErrorCode, FleetSpec, Request, Response};
use crate::FleetError;

/// Environment variable naming a marker file; see the module docs.
pub const FAIL_ONCE_ENV: &str = "FLEET_FAIL_ONCE";

/// How a worker runs.
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub addr: String,
    /// This worker's fleet-unique name (leases are keyed by it).
    pub name: String,
    /// Directory holding the shard binaries the spec may name.
    pub bin_dir: PathBuf,
    /// Working directory for shard subprocesses; row files appear under
    /// `<workdir>/results/`.
    pub workdir: PathBuf,
    /// Local pair-cache directory (passed to shards as `--cache-dir`).
    pub cache_dir: PathBuf,
    /// Local world-cache directory (passed as `--world-cache`).
    pub world_cache: PathBuf,
    /// Child poll / sleep quantum.
    pub poll: Duration,
    /// Heartbeat cadence while a slice runs. Keep well under the
    /// coordinator's lease timeout.
    pub heartbeat: Duration,
    /// Connection attempts before giving up on the coordinator.
    pub connect_retries: u32,
    /// Delay between connection attempts.
    pub connect_backoff: Duration,
    /// Socket read/write timeouts (`None` = block forever).
    pub io_timeout: Option<Duration>,
}

/// What a drained worker did, for logs and assertions.
#[derive(Debug, Default)]
pub struct WorkerReport {
    /// Slices this worker completed (in completion order).
    pub completed: Vec<u32>,
    /// Cache keys this worker had to pull from the coordinator.
    pub pulled: Vec<String>,
}

/// Runs the worker to drain: connects, syncs caches, leases slices until
/// the coordinator says `Drained`.
///
/// # Errors
///
/// [`FleetError::CoordinatorGone`] if connecting fails past the retry
/// budget, [`FleetError::FleetFailed`] if the coordinator reports the
/// fleet dead, [`FleetError::SpawnFailed`] if the spec's binary is not in
/// `bin_dir`, plus transport/protocol/store errors as typed.
pub fn run_worker(config: &WorkerConfig) -> Result<WorkerReport, FleetError> {
    let store = CacheStore::open(&config.world_cache, &config.cache_dir)?;
    fs::create_dir_all(config.workdir.join("results"))?;
    let mut stream = connect(config)?;
    let spec = hello(&mut stream, &config.name)?;
    eprintln!(
        "[worker {}] welcome: bin '{}', scale '{}', {} shard(s), world '{}'",
        config.name, spec.bin, spec.scale, spec.shards, spec.world_key
    );
    let mut report = WorkerReport::default();
    sync_caches(&mut stream, &store, &spec, config, &mut report)?;
    let bin = config.bin_dir.join(&spec.bin);
    if !bin.exists() {
        return Err(FleetError::SpawnFailed {
            bin: bin.display().to_string(),
            detail: "not found in the worker's bin dir".to_string(),
        });
    }
    loop {
        match call(&mut stream, &Request::Lease)? {
            Response::Job { slice, shards } => {
                run_slice(&mut stream, config, &spec, &bin, slice, shards, &mut report)?;
            }
            Response::Wait { millis } => {
                // The coordinator's hint, bounded so a wild value cannot
                // park the worker.
                std::thread::sleep(Duration::from_millis(millis.min(5_000).max(1)));
            }
            Response::Drained => {
                eprintln!(
                    "[worker {}] drained: {} slice(s) completed",
                    config.name,
                    report.completed.len()
                );
                return Ok(report);
            }
            Response::Error {
                code: ErrorCode::FleetFailed,
                message,
            } => return Err(FleetError::FleetFailed { message }),
            Response::Error { code, message } => return Err(FleetError::Remote { code, message }),
            other => {
                return Err(FleetError::Protocol {
                    detail: format!("unexpected Lease response: {other:?}"),
                })
            }
        }
    }
}

fn connect(config: &WorkerConfig) -> Result<TcpStream, FleetError> {
    let mut last = String::new();
    for attempt in 0..config.connect_retries.max(1) {
        if attempt > 0 {
            std::thread::sleep(config.connect_backoff);
        }
        match TcpStream::connect(&config.addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(config.io_timeout).ok();
                stream.set_write_timeout(config.io_timeout).ok();
                return Ok(stream);
            }
            Err(e) => last = e.to_string(),
        }
    }
    Err(FleetError::CoordinatorGone {
        detail: format!(
            "no connection to {} after {} attempt(s): {last}",
            config.addr,
            config.connect_retries.max(1)
        ),
    })
}

fn hello(stream: &mut (impl Read + Write), name: &str) -> Result<FleetSpec, FleetError> {
    match call(
        stream,
        &Request::Hello {
            worker: name.to_string(),
        },
    )? {
        Response::Welcome(spec) => Ok(spec),
        Response::Error { code, message } => Err(FleetError::Remote { code, message }),
        other => Err(FleetError::Protocol {
            detail: format!("expected Welcome, got {other:?}"),
        }),
    }
}

/// Pulls the fleet's world cache if absent, then every pair-cache entry
/// keyed to that world — the warm state that makes shard runs cheap.
fn sync_caches(
    stream: &mut (impl Read + Write),
    store: &CacheStore,
    spec: &FleetSpec,
    config: &WorkerConfig,
    report: &mut WorkerReport,
) -> Result<(), FleetError> {
    if ensure_key(stream, store, &spec.world_key)? {
        eprintln!(
            "[worker {}] pulled world cache '{}'",
            config.name, spec.world_key
        );
        report.pulled.push(spec.world_key.clone());
    }
    let Some(world) = parse_key(&spec.world_key) else {
        return Err(FleetError::Protocol {
            detail: format!("spec world key '{}' does not parse", spec.world_key),
        });
    };
    let keys = match call(stream, &Request::CacheKeys)? {
        Response::Keys { keys } => keys,
        Response::Error { code, message } => return Err(FleetError::Remote { code, message }),
        other => {
            return Err(FleetError::Protocol {
                detail: format!("expected Keys, got {other:?}"),
            })
        }
    };
    for key in keys {
        let Some(parsed) = parse_key(&key) else {
            continue;
        };
        if parsed.family == CacheFamily::Pair && parsed.fingerprint == world.fingerprint {
            if ensure_key(stream, store, &key)? {
                eprintln!("[worker {}] pulled pair cache '{key}'", config.name);
                report.pulled.push(key);
            }
        }
    }
    Ok(())
}

/// Removes leftover row files for this exact slice so a retry cannot push
/// a predecessor's output.
fn clean_slice_rows(results: &Path, slice: u32, shards: u32) {
    let Ok(entries) = fs::read_dir(results) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if parse_shard_name(name) == Some((slice, shards)) {
            fs::remove_file(entry.path()).ok();
        }
    }
}

fn run_slice(
    stream: &mut (impl Read + Write),
    config: &WorkerConfig,
    spec: &FleetSpec,
    bin: &Path,
    slice: u32,
    shards: u32,
    report: &mut WorkerReport,
) -> Result<(), FleetError> {
    eprintln!("[worker {}] running slice {slice}/{shards}", config.name);
    let results = config.workdir.join("results");
    clean_slice_rows(&results, slice, shards);
    let mut child = Command::new(bin)
        .current_dir(&config.workdir)
        .arg("--scale")
        .arg(&spec.scale)
        .arg("--shard")
        .arg(format!("{slice}/{shards}"))
        .arg("--cache-dir")
        .arg(&config.cache_dir)
        .arg("--world-cache")
        .arg(&config.world_cache)
        .args(&spec.extra)
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| FleetError::SpawnFailed {
            bin: bin.display().to_string(),
            detail: e.to_string(),
        })?;
    maybe_die_once(config, &mut child);
    let status = match supervise(stream, config, &mut child, slice)? {
        Supervision::Exited(status) => status,
        Supervision::LeaseLost => {
            eprintln!(
                "[worker {}] lease on slice {slice} lost; dropping the work",
                config.name
            );
            return Ok(());
        }
    };
    if !status.success() {
        eprintln!(
            "[worker {}] slice {slice} child failed ({status}); reporting",
            config.name
        );
        let resp = call(
            stream,
            &Request::Failed {
                slice,
                message: format!("shard child exited with {status}"),
            },
        )?;
        if let Response::Error { code, message } = resp {
            return Err(FleetError::Remote { code, message });
        }
        return Ok(());
    }
    push_and_complete(stream, config, &results, slice, shards, report)
}

enum Supervision {
    Exited(std::process::ExitStatus),
    LeaseLost,
}

/// Polls the child while heartbeating the lease. Sleep-interval
/// accounting stands in for a clock.
fn supervise(
    stream: &mut (impl Read + Write),
    config: &WorkerConfig,
    child: &mut Child,
    slice: u32,
) -> Result<Supervision, FleetError> {
    let poll = config.poll.max(Duration::from_millis(1));
    let mut since_heartbeat = Duration::ZERO;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Ok(Supervision::Exited(status)),
            Ok(None) => {}
            Err(e) => {
                child.kill().ok();
                child.wait().ok();
                return Err(FleetError::Io(e));
            }
        }
        if since_heartbeat >= config.heartbeat {
            since_heartbeat = Duration::ZERO;
            match call(stream, &Request::Heartbeat { slice }) {
                Ok(Response::Ack) => {}
                Ok(Response::Lost) => {
                    child.kill().ok();
                    child.wait().ok();
                    return Ok(Supervision::LeaseLost);
                }
                Ok(Response::Error { code, message }) => {
                    child.kill().ok();
                    child.wait().ok();
                    return Err(FleetError::Remote { code, message });
                }
                Ok(other) => {
                    child.kill().ok();
                    child.wait().ok();
                    return Err(FleetError::Protocol {
                        detail: format!("unexpected Heartbeat response: {other:?}"),
                    });
                }
                Err(e) => {
                    // The coordinator is unreachable: the child's output
                    // has nowhere to go, so stop burning its CPU.
                    child.kill().ok();
                    child.wait().ok();
                    return Err(e);
                }
            }
        }
        std::thread::sleep(poll);
        since_heartbeat += poll;
    }
}

/// Ships every row file this slice produced, then declares it complete.
fn push_and_complete(
    stream: &mut (impl Read + Write),
    config: &WorkerConfig,
    results: &Path,
    slice: u32,
    shards: u32,
    report: &mut WorkerReport,
) -> Result<(), FleetError> {
    let mut names: Vec<String> = Vec::new();
    for entry in fs::read_dir(results)?.flatten() {
        if let Some(name) = entry.file_name().to_str() {
            if parse_shard_name(name) == Some((slice, shards)) {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    for name in &names {
        let bytes = fs::read(results.join(name))?;
        match call(
            stream,
            &Request::PushRows {
                slice,
                name: name.clone(),
                bytes,
            },
        )? {
            Response::Ack => {}
            Response::Lost => {
                eprintln!(
                    "[worker {}] lease on slice {slice} lost mid-push; dropping",
                    config.name
                );
                return Ok(());
            }
            Response::Error { code, message } => return Err(FleetError::Remote { code, message }),
            other => {
                return Err(FleetError::Protocol {
                    detail: format!("unexpected PushRows response: {other:?}"),
                })
            }
        }
    }
    match call(stream, &Request::Complete { slice })? {
        Response::Ack => {
            eprintln!(
                "[worker {}] slice {slice} complete ({} row file(s) pushed)",
                config.name,
                names.len()
            );
            report.completed.push(slice);
            Ok(())
        }
        Response::Lost => {
            eprintln!(
                "[worker {}] lease on slice {slice} lost at completion; dropping",
                config.name
            );
            Ok(())
        }
        Response::Error { code, message } => Err(FleetError::Remote { code, message }),
        other => Err(FleetError::Protocol {
            detail: format!("unexpected Complete response: {other:?}"),
        }),
    }
}

/// The fault-injection hook: with `FLEET_FAIL_ONCE=<marker>` set and no
/// marker file yet, die mid-slice (killing the child) with status 43.
fn maybe_die_once(config: &WorkerConfig, child: &mut Child) {
    let Ok(marker) = std::env::var(FAIL_ONCE_ENV) else {
        return;
    };
    if marker.is_empty() || Path::new(&marker).exists() {
        return;
    }
    if fs::write(&marker, b"died\n").is_err() {
        return;
    }
    // Let the child actually start so the death is genuinely mid-slice.
    std::thread::sleep(Duration::from_millis(150));
    child.kill().ok();
    child.wait().ok();
    eprintln!(
        "[worker {}] injected failure: dying mid-slice ({FAIL_ONCE_ENV})",
        config.name
    );
    std::process::exit(43);
}
