//! Cache shipping under fire: a scripted coordinator-side peer serves a
//! corrupted chunk on the first pull; the worker-side transfer must
//! surface a typed `CorruptTransfer` (never write the bytes), re-pull,
//! and end up with a file **bitwise identical** to the original.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use embedstab_fleet::transfer::{chunk_count, chunk_range, ensure_key, pull_key};
use embedstab_fleet::wire::{
    decode_request, encode_response, read_frame, write_frame, Request, Response, CHUNK_BYTES,
};
use embedstab_fleet::FleetError;
use embedstab_pipeline::cache::scratch_dir;
use embedstab_pipeline::{content_hash, CacheStore};

/// A synthetic world-cache file: the real `ESWC` header (magic, version,
/// fingerprint) followed by a deterministic payload. Large enough to span
/// two chunks, so assembly and interior-chunk checks are exercised.
fn world_file(fingerprint: u64, payload_len: usize) -> (String, Vec<u8>) {
    let key = format!("world_v1_{fingerprint:016x}.bin");
    let mut bytes = Vec::with_capacity(16 + payload_len);
    bytes.extend_from_slice(b"ESWC");
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&fingerprint.to_le_bytes());
    for i in 0..payload_len {
        bytes.push((i % 251) as u8);
    }
    (key, bytes)
}

/// Serves chunked `CacheGet`s for exactly one file over one listener.
/// Every pull attempt whose index is in `corrupt_attempts` gets its first
/// chunk's last payload byte flipped (with the *correct* whole-file hash
/// advertised, so only receipt-time verification can catch it).
fn scripted_peer(
    listener: TcpListener,
    file: Vec<u8>,
    corrupt_attempts: &'static [usize],
) -> thread::JoinHandle<()> {
    let attempt = Arc::new(AtomicUsize::new(0));
    thread::spawn(move || {
        // One connection is enough: pulls share the worker's stream.
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        loop {
            let body = match read_frame(&mut stream) {
                Ok(Some(body)) => body,
                _ => return,
            };
            let Some(Request::CacheGet { chunk, .. }) = decode_request(&body) else {
                return;
            };
            if chunk == 0 {
                attempt.fetch_add(1, Ordering::SeqCst);
            }
            let this_attempt = attempt.load(Ordering::SeqCst) - 1;
            let Some(range) = chunk_range(file.len(), chunk) else {
                return;
            };
            let mut piece = file[range].to_vec();
            if chunk == 0 && corrupt_attempts.contains(&this_attempt) {
                if let Some(last) = piece.last_mut() {
                    *last ^= 0xFF;
                }
            }
            let resp = Response::Chunk {
                total_len: file.len() as u64,
                chunks: chunk_count(file.len()),
                content_hash: content_hash(&file),
                bytes: piece,
            };
            let Some(out) = encode_response(&resp) else {
                return;
            };
            if write_frame(&mut stream, &out).is_err() {
                return;
            }
        }
    })
}

fn connect(listener: &TcpListener) -> TcpStream {
    let addr = listener.local_addr().expect("listener addr");
    TcpStream::connect(addr).expect("connect to scripted peer")
}

#[test]
fn corrupt_transfer_is_typed_and_repull_restores_bitwise() {
    let root = scratch_dir("fleet_cache_pull");
    std::fs::remove_dir_all(&root).ok();
    let (key, file) = world_file(0xdead_beef_cafe_f00d, CHUNK_BYTES + 4_096);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let mut stream = connect(&listener);
    // Attempt 0 corrupt, attempt 1 clean.
    let peer = scripted_peer(listener, file.clone(), &[0]);

    // Direct pull of the corrupted attempt: a typed CorruptTransfer
    // naming the key, not an Io error and certainly not bad bytes.
    match pull_key(&mut stream, &key) {
        Err(FleetError::CorruptTransfer { key: k, detail }) => {
            assert_eq!(k, key);
            assert!(
                detail.contains("content hash"),
                "the whole-file hash is what catches a flipped payload byte: {detail}"
            );
        }
        other => panic!("expected CorruptTransfer, got {other:?}"),
    }

    // ensure_key on an empty store: sees the miss, pulls (clean this
    // time), verifies, and stores.
    let store = CacheStore::open(root.join("world"), root.join("pair")).expect("store opens");
    assert!(!store.has(&key));
    let pulled = ensure_key(&mut stream, &store, &key).expect("clean pull succeeds");
    assert!(pulled, "the store was empty; a pull must have happened");
    let local = store
        .path(&key)
        .expect("key parses")
        .canonicalize()
        .expect("pulled file exists");
    let on_disk = std::fs::read(local).expect("read pulled file");
    assert_eq!(on_disk, file, "pulled file must be bitwise identical");

    // A second ensure_key is a no-op: the store already has it.
    assert!(!ensure_key(&mut stream, &store, &key).expect("cached"));

    drop(stream);
    peer.join().expect("peer thread");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn repeatedly_corrupt_transfer_fails_after_one_retry() {
    let root = scratch_dir("fleet_cache_pull_hard");
    std::fs::remove_dir_all(&root).ok();
    let (key, file) = world_file(0x0123_4567_89ab_cdef, 2_048);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let mut stream = connect(&listener);
    // Both attempts corrupt: ensure_key must give up with the typed error
    // rather than loop forever, and the store must stay empty.
    let peer = scripted_peer(listener, file, &[0, 1]);
    let store = CacheStore::open(root.join("world"), root.join("pair")).expect("store opens");
    match ensure_key(&mut stream, &store, &key) {
        Err(FleetError::CorruptTransfer { .. }) => {}
        other => panic!("expected CorruptTransfer after retry, got {other:?}"),
    }
    assert!(!store.has(&key), "corrupt bytes must never reach the store");
    drop(stream);
    peer.join().expect("peer thread");
    std::fs::remove_dir_all(&root).ok();
}
