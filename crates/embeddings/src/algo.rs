//! Unified dispatch over the embedding algorithms in the study.

use std::fmt;

use embedstab_corpus::Vocab;

use crate::cbow::CbowTrainer;
use crate::fasttext::FastTextTrainer;
use crate::glove::GloveTrainer;
use crate::mc::McTrainer;
use crate::stats::CorpusStats;
use crate::Embedding;

/// The embedding algorithms studied by the paper: CBOW, GloVe, and MC in
/// the main body, fastText skipgram in Appendix E.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Algo {
    /// word2vec continuous bag-of-words with negative sampling.
    Cbow,
    /// GloVe weighted co-occurrence factorization.
    Glove,
    /// Online matrix completion on PPMI.
    Mc,
    /// fastText subword skipgram.
    FastTextSg,
}

impl Algo {
    /// The three main-body algorithms (Figures 1-2, Tables 1-3).
    pub const MAIN: [Algo; 3] = [Algo::Cbow, Algo::Glove, Algo::Mc];

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Cbow => "CBOW",
            Algo::Glove => "GloVe",
            Algo::Mc => "MC",
            Algo::FastTextSg => "FT-SG",
        }
    }
}

impl fmt::Display for Algo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Trains an embedding with the named algorithm at its default
/// hyperparameters.
///
/// This is the pipeline's single entry point; per-algorithm configuration
/// lives on the individual trainers ([`CbowTrainer`], [`GloveTrainer`],
/// [`McTrainer`], [`FastTextTrainer`]).
///
/// # Panics
///
/// Panics if `dim` is zero or the statistics are inconsistent (see the
/// individual trainers).
pub fn train_embedding(
    algo: Algo,
    stats: &CorpusStats,
    vocab: &Vocab,
    dim: usize,
    seed: u64,
) -> Embedding {
    match algo {
        Algo::Cbow => CbowTrainer::default().train(stats, dim, seed),
        Algo::Glove => GloveTrainer::default().train(&stats.cooc_weighted, dim, seed),
        Algo::Mc => McTrainer::default().train(&stats.ppmi, dim, seed),
        Algo::FastTextSg => FastTextTrainer::default().train(stats, vocab, dim, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_corpus::{CorpusConfig, LatentModel, LatentModelConfig};
    use embedstab_linalg::vecops;

    /// The load-bearing sanity check for the whole reproduction: embeddings
    /// trained on a synthetic corpus must recover the latent topic
    /// structure, i.e. same-topic words should be more similar than
    /// different-topic words on average.
    #[test]
    fn all_algorithms_recover_topic_structure() {
        let model = LatentModel::new(&LatentModelConfig {
            vocab_size: 120,
            n_topics: 4,
            ..Default::default()
        });
        let corpus = model.generate_corpus(&CorpusConfig {
            n_tokens: 40_000,
            ..Default::default()
        });
        let stats = CorpusStats::compute(std::sync::Arc::new(corpus), 120, 6);
        for algo in [Algo::Cbow, Algo::Glove, Algo::Mc, Algo::FastTextSg] {
            let emb = train_embedding(algo, &stats, &model.vocab, 16, 0);
            let mut same = (0.0, 0usize);
            let mut diff = (0.0, 0usize);
            for i in 0..60u32 {
                for j in (i + 1)..60u32 {
                    let sim = vecops::cosine_similarity(emb.vector(i), emb.vector(j));
                    if model.word_topics[i as usize] == model.word_topics[j as usize] {
                        same = (same.0 + sim, same.1 + 1);
                    } else {
                        diff = (diff.0 + sim, diff.1 + 1);
                    }
                }
            }
            let same_mean = same.0 / same.1 as f64;
            let diff_mean = diff.0 / diff.1 as f64;
            assert!(
                same_mean > diff_mean + 0.05,
                "{algo}: same-topic similarity {same_mean:.3} should exceed \
                 different-topic {diff_mean:.3}"
            );
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Algo::Cbow.name(), "CBOW");
        assert_eq!(Algo::Glove.name(), "GloVe");
        assert_eq!(Algo::Mc.name(), "MC");
        assert_eq!(Algo::FastTextSg.name(), "FT-SG");
        assert_eq!(Algo::MAIN.len(), 3);
    }
}
