//! GloVe: global vectors from weighted co-occurrence factorization
//! (Pennington et al., 2014).

use embedstab_corpus::Cooc;
use embedstab_linalg::Mat;
use rand::{Rng, RngExt, SeedableRng};

use crate::{Embedding, TrainReport};

/// Hyperparameters for [`GloveTrainer`].
///
/// The paper uses `xmax = 100` on 4.5B-token corpora; the default here is
/// scaled down for the synthetic corpora (hundreds of thousands of tokens)
/// so that the weighting function still discriminates counts.
#[derive(Clone, Debug)]
pub struct GloveConfig {
    /// Number of passes over the non-zero co-occurrence entries.
    pub epochs: usize,
    /// AdaGrad learning rate.
    pub lr: f64,
    /// Weighting-function cutoff: counts above `xmax` get weight 1.
    pub xmax: f64,
    /// Weighting-function exponent.
    pub alpha: f64,
    /// Half-width of the uniform initialization (scaled by `1/dim`).
    pub init_scale: f64,
}

impl Default for GloveConfig {
    fn default() -> Self {
        GloveConfig {
            epochs: 30,
            lr: 0.05,
            xmax: 10.0,
            alpha: 0.75,
            init_scale: 0.5,
        }
    }
}

/// Trains GloVe embeddings from a (distance-weighted) co-occurrence table.
///
/// Word and context embeddings plus biases are fit with AdaGrad on
/// `f(x_ij) (w_i . c_j + b_i + b~_j - ln x_ij)^2`; the returned embedding is
/// the standard `W + C` sum.
#[derive(Clone, Debug, Default)]
pub struct GloveTrainer {
    config: GloveConfig,
}

impl GloveTrainer {
    /// Creates a trainer with the given hyperparameters.
    pub fn new(config: GloveConfig) -> Self {
        GloveTrainer { config }
    }

    /// Trains a `dim`-dimensional embedding, deterministic given `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn train(&self, cooc: &Cooc, dim: usize, seed: u64) -> Embedding {
        self.train_with_report(cooc, dim, seed).0
    }

    /// Trains and also returns first/last-epoch mean weighted losses.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn train_with_report(
        &self,
        cooc: &Cooc,
        dim: usize,
        seed: u64,
    ) -> (Embedding, TrainReport) {
        assert!(dim > 0, "dim must be positive");
        let n = cooc.n();
        let cfg = &self.config;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let scale = cfg.init_scale / dim as f64;
        let mut w = Mat::random_uniform(n, dim, -scale, scale, &mut rng);
        let mut c = Mat::random_uniform(n, dim, -scale, scale, &mut rng);
        let mut bw = vec![0.0f64; n];
        let mut bc = vec![0.0f64; n];
        // AdaGrad accumulators, initialized to 1 as in the reference code.
        let mut gw = Mat::from_fn(n, dim, |_, _| 1.0);
        let mut gc = Mat::from_fn(n, dim, |_, _| 1.0);
        let mut gbw = vec![1.0f64; n];
        let mut gbc = vec![1.0f64; n];

        let mut entries = cooc.entries();
        let mut initial_loss = 0.0;
        let mut final_loss = 0.0;
        for epoch in 0..cfg.epochs {
            shuffle(&mut entries, &mut rng);
            let mut loss = 0.0;
            for &(i, j, x) in &entries {
                let (i, j) = (i as usize, j as usize);
                let weight = if x < cfg.xmax {
                    (x / cfg.xmax).powf(cfg.alpha)
                } else {
                    1.0
                };
                let diff =
                    embedstab_linalg::vecops::dot(w.row(i), c.row(j)) + bw[i] + bc[j] - x.ln();
                loss += 0.5 * weight * diff * diff;
                let fdiff = (weight * diff).clamp(-10.0, 10.0);
                // AdaGrad updates for w_i and c_j.
                {
                    let wi = w.row_mut(i);
                    let cjv: Vec<f64> = c.row(j).to_vec();
                    let gwi = gw.row_mut(i);
                    let gcj = gc.row_mut(j);
                    let cj = c.row_mut(j);
                    for k in 0..dim {
                        let grad_w = fdiff * cjv[k];
                        let grad_c = fdiff * wi[k];
                        wi[k] -= cfg.lr * grad_w / gwi[k].sqrt();
                        cj[k] -= cfg.lr * grad_c / gcj[k].sqrt();
                        gwi[k] += grad_w * grad_w;
                        gcj[k] += grad_c * grad_c;
                    }
                }
                bw[i] -= cfg.lr * fdiff / gbw[i].sqrt();
                bc[j] -= cfg.lr * fdiff / gbc[j].sqrt();
                gbw[i] += fdiff * fdiff;
                gbc[j] += fdiff * fdiff;
            }
            let mean = loss / entries.len().max(1) as f64;
            if epoch == 0 {
                initial_loss = mean;
            }
            final_loss = mean;
        }
        (
            Embedding::new(w.add(&c)),
            TrainReport {
                initial_loss,
                final_loss,
            },
        )
    }
}

fn shuffle<T>(xs: &mut [T], rng: &mut impl Rng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_corpus::{
        Cooc, CoocConfig, Corpus, CorpusConfig, LatentModel, LatentModelConfig,
    };

    fn small_cooc() -> Cooc {
        let model = LatentModel::new(&LatentModelConfig {
            vocab_size: 80,
            n_topics: 4,
            ..Default::default()
        });
        let corpus = model.generate_corpus(&CorpusConfig {
            n_tokens: 20_000,
            ..Default::default()
        });
        Cooc::count(
            &corpus,
            80,
            &CoocConfig {
                window: 8,
                distance_weighting: true,
            },
        )
    }

    #[test]
    fn loss_decreases() {
        let cooc = small_cooc();
        let (emb, report) = GloveTrainer::default().train_with_report(&cooc, 8, 0);
        assert!(report.final_loss < report.initial_loss * 0.8, "{report:?}");
        assert!(emb.mat().is_finite());
        assert_eq!(emb.shape(), (80, 8));
    }

    #[test]
    fn deterministic_given_seed() {
        let cooc = small_cooc();
        let a = GloveTrainer::default().train(&cooc, 6, 1);
        let b = GloveTrainer::default().train(&cooc, 6, 1);
        assert_eq!(a, b);
        let c = GloveTrainer::default().train(&cooc, 6, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn weighting_function_caps_at_one() {
        // Indirect check: training on a table with one huge count should not
        // blow up (weight saturates at 1, fdiff is clamped).
        let docs = vec![vec![0u32, 1, 0, 1, 0, 1, 0, 1, 0, 1]; 200];
        let corpus = Corpus::from_docs(docs);
        let cooc = Cooc::count(
            &corpus,
            2,
            &CoocConfig {
                window: 1,
                distance_weighting: false,
            },
        );
        let (emb, _) = GloveTrainer::default().train_with_report(&cooc, 4, 0);
        assert!(emb.mat().is_finite());
    }
}
