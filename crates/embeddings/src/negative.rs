//! Negative sampling table (unigram distribution raised to the 3/4 power).

use embedstab_corpus::AliasTable;
use rand::Rng;

/// The word2vec negative-sampling distribution: word probabilities
/// proportional to `count^0.75`, with O(1) sampling via an alias table.
#[derive(Clone, Debug)]
pub struct NegativeTable {
    table: AliasTable,
}

impl NegativeTable {
    /// Builds the table from raw unigram counts.
    ///
    /// Words with zero count get a tiny floor weight so the distribution is
    /// well-defined even when the corpus misses rare vocabulary entries.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty.
    pub fn new(counts: &[u64]) -> Self {
        assert!(!counts.is_empty(), "counts must be non-empty");
        let weights: Vec<f64> = counts
            .iter()
            .map(|&c| (c as f64).powf(0.75).max(1e-3))
            .collect();
        NegativeTable {
            table: AliasTable::new(&weights),
        }
    }

    /// Draws a negative sample different from `exclude`.
    pub fn sample(&self, exclude: u32, rng: &mut impl Rng) -> u32 {
        // Rejection on the excluded id terminates quickly because no single
        // word carries most of the ^0.75-smoothed mass.
        for _ in 0..64 {
            let w = self.table.sample(rng) as u32;
            if w != exclude {
                return w;
            }
        }
        // Pathological fallback (single-word vocabularies in tests).
        (exclude + 1) % self.table.len() as u32
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if the table is empty (never constructible).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn smoothing_flattens_distribution() {
        let counts = [1000u64, 10, 10, 10];
        let table = NegativeTable::new(&counts);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut hits = [0usize; 4];
        for _ in 0..50_000 {
            hits[table.sample(u32::MAX, &mut rng) as usize] += 1;
        }
        // Raw ratio would be 1000/1030 ~ 0.97; smoothed is
        // 1000^.75/(1000^.75+3*10^.75) ~ 0.91.
        let p0 = hits[0] as f64 / 50_000.0;
        assert!(p0 < 0.94 && p0 > 0.86, "p0 = {p0}");
    }

    #[test]
    fn excludes_requested_word() {
        let table = NegativeTable::new(&[5, 5]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(table.sample(0, &mut rng), 1);
        }
    }

    #[test]
    fn zero_counts_still_sampleable() {
        let table = NegativeTable::new(&[0, 0, 7]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        // Should not loop forever or panic.
        for _ in 0..100 {
            let w = table.sample(2, &mut rng);
            assert!(w < 2);
        }
    }
}
