//! Word-embedding algorithms for the `embedstab` workspace, written from
//! scratch.
//!
//! The paper's study covers three pre-trained embedding algorithms —
//! word2vec **CBOW**, **GloVe**, and online **matrix completion (MC)** on the
//! PPMI matrix — plus the **fastText** subword extension (Appendix E.1).
//! This crate implements all four against the synthetic corpora from
//! [`embedstab_corpus`]:
//!
//! - [`cbow::CbowTrainer`] — continuous bag-of-words with negative sampling
//!   (Mikolov et al., 2013).
//! - [`glove::GloveTrainer`] — weighted co-occurrence factorization with
//!   AdaGrad (Pennington et al., 2014).
//! - [`mc::McTrainer`] — SGD matrix completion on observed PPMI entries
//!   (Jin et al., 2016).
//! - [`fasttext::FastTextTrainer`] — skipgram with character n-gram buckets
//!   (Bojanowski et al., 2017).
//! - [`ppmi_svd::PpmiSvdTrainer`] — spectral baseline: truncated
//!   (randomized) SVD of the PPMI matrix (Levy & Goldberg, 2014).
//!
//! All trainers are deterministic given their seed, and all return an
//! [`Embedding`] (a `vocab x dim` matrix with frequency-ordered rows).
//!
//! # Example
//!
//! ```
//! use embedstab_corpus::{CorpusConfig, LatentModel, LatentModelConfig};
//! use embedstab_embeddings::{Algo, CorpusStats, train_embedding};
//!
//! let model = LatentModel::new(&LatentModelConfig { vocab_size: 100, ..Default::default() });
//! let corpus = model.generate_corpus(&CorpusConfig { n_tokens: 3_000, ..Default::default() });
//! let stats = CorpusStats::compute(std::sync::Arc::new(corpus), 100, 4);
//! let emb = train_embedding(Algo::Mc, &stats, &model.vocab, 8, 0);
//! assert_eq!(emb.shape(), (100, 8));
//! ```

pub mod algo;
pub mod cbow;
pub mod embedding;
pub mod fasttext;
pub mod glove;
pub mod mc;
pub mod negative;
pub mod ppmi_svd;
pub mod stats;

pub use algo::{train_embedding, Algo};
pub use embedding::Embedding;
pub use ppmi_svd::{PpmiSvdConfig, PpmiSvdTrainer};
pub use stats::CorpusStats;

/// Loss bookkeeping returned by the `train_with_report` trainer entry points.
#[derive(Clone, Copy, Debug)]
pub struct TrainReport {
    /// Mean training loss over the first epoch.
    pub initial_loss: f64,
    /// Mean training loss over the final epoch.
    pub final_loss: f64,
}
