//! The embedding matrix type shared by trainers, measures, and downstream
//! models.

use embedstab_linalg::{align, Mat};

/// A trained word embedding: a `vocab_size x dim` matrix whose row order is
/// the vocabulary's frequency order (row 0 = most frequent word).
///
/// The frequency ordering matters: the paper computes all embedding distance
/// measures over the top 10k most frequent words, which here is simply a
/// row-prefix ([`Embedding::top_rows`]).
///
/// # Example
///
/// ```
/// use embedstab_embeddings::Embedding;
/// use embedstab_linalg::Mat;
///
/// let emb = Embedding::new(Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
/// assert_eq!(emb.dim(), 2);
/// assert_eq!(emb.vocab_size(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Embedding {
    mat: Mat,
}

impl Embedding {
    /// Wraps a `vocab_size x dim` matrix as an embedding.
    pub fn new(mat: Mat) -> Self {
        Embedding { mat }
    }

    /// Number of words.
    pub fn vocab_size(&self) -> usize {
        self.mat.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.mat.cols()
    }

    /// `(vocab_size, dim)`.
    pub fn shape(&self) -> (usize, usize) {
        self.mat.shape()
    }

    /// The vector for word id `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn vector(&self, w: u32) -> &[f64] {
        self.mat.row(w as usize)
    }

    /// The underlying matrix.
    pub fn mat(&self) -> &Mat {
        &self.mat
    }

    /// Consumes the embedding, returning the matrix.
    pub fn into_mat(self) -> Mat {
        self.mat
    }

    /// The embedding restricted to the `m` most frequent words (a row
    /// prefix, since rows are frequency-ordered).
    ///
    /// # Panics
    ///
    /// Panics if `m > vocab_size`.
    pub fn top_rows(&self, m: usize) -> Embedding {
        assert!(m <= self.vocab_size(), "cannot take more rows than exist");
        let sub = self.mat.select_rows(&(0..m).collect::<Vec<_>>());
        Embedding::new(sub)
    }

    /// Aligns this embedding to `reference` with orthogonal Procrustes
    /// (Schönemann, 1966), as the paper does for every Wiki'18/Wiki'17 pair
    /// before compression and downstream training.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn align_to(&self, reference: &Embedding) -> Embedding {
        Embedding::new(align(reference.mat(), self.mat()))
    }

    /// Average squared entry value, used by quantization diagnostics.
    pub fn mean_sq_entry(&self) -> f64 {
        let (n, d) = self.shape();
        self.mat.frobenius_norm_sq() / (n * d) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn accessors() {
        let emb = Embedding::new(Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        assert_eq!(emb.shape(), (3, 2));
        assert_eq!(emb.vector(1), &[3.0, 4.0]);
        assert_eq!(emb.top_rows(2).shape(), (2, 2));
        assert_eq!(emb.top_rows(2).vector(1), &[3.0, 4.0]);
    }

    #[test]
    fn align_to_reduces_distance() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = Embedding::new(Mat::random_normal(40, 6, &mut rng));
        // y = rotated x plus noise.
        let g = Mat::random_normal(6, 6, &mut rng);
        let (q, _) = g.qr();
        let mut noisy = x.mat().matmul(&q);
        noisy.axpy(0.05, &Mat::random_normal(40, 6, &mut rng));
        let y = Embedding::new(noisy);
        let aligned = y.align_to(&x);
        let before = x.mat().sub(y.mat()).frobenius_norm();
        let after = x.mat().sub(aligned.mat()).frobenius_norm();
        assert!(
            after < before,
            "alignment should reduce distance ({after} !< {before})"
        );
        assert!(after < 0.1 * before, "rotation should be mostly removed");
    }
}
