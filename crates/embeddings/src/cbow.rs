//! Continuous bag-of-words (CBOW) with negative sampling
//! (Mikolov et al., 2013), following the word2vec reference implementation.

use embedstab_linalg::{vecops, Mat};
use rand::{Rng, RngExt, SeedableRng};

use crate::negative::NegativeTable;
use crate::stats::CorpusStats;
use crate::{Embedding, TrainReport};

/// Hyperparameters for [`CbowTrainer`] (paper Table 4: window 15, 5
/// negatives, lr 0.05; epochs scaled up because the synthetic corpora are
/// small).
#[derive(Clone, Debug)]
pub struct CbowConfig {
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate, decayed linearly to `lr * min_lr_frac`.
    pub lr: f64,
    /// Floor for the linear learning-rate decay, as a fraction of `lr`.
    pub min_lr_frac: f64,
    /// Maximum context half-window (the effective window is sampled
    /// uniformly from `1..=window` per position, as in word2vec).
    pub window: usize,
    /// Number of negative samples per position.
    pub negatives: usize,
    /// Frequent-word subsampling threshold (word2vec `-sample`); 0 disables.
    pub subsample: f64,
}

impl Default for CbowConfig {
    fn default() -> Self {
        CbowConfig {
            epochs: 10,
            lr: 0.05,
            min_lr_frac: 1e-4,
            window: 8,
            negatives: 5,
            subsample: 1e-3,
        }
    }
}

/// Trains CBOW embeddings by streaming over the corpus with SGD.
#[derive(Clone, Debug, Default)]
pub struct CbowTrainer {
    config: CbowConfig,
}

impl CbowTrainer {
    /// Creates a trainer with the given hyperparameters.
    pub fn new(config: CbowConfig) -> Self {
        CbowTrainer { config }
    }

    /// Trains a `dim`-dimensional embedding, deterministic given `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or the corpus is empty.
    pub fn train(&self, stats: &CorpusStats, dim: usize, seed: u64) -> Embedding {
        self.train_with_report(stats, dim, seed).0
    }

    /// Trains and also returns first/last-epoch mean negative-sampling
    /// losses.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or the corpus is empty.
    pub fn train_with_report(
        &self,
        stats: &CorpusStats,
        dim: usize,
        seed: u64,
    ) -> (Embedding, TrainReport) {
        assert!(dim > 0, "dim must be positive");
        assert!(stats.n_tokens() > 0, "corpus must be non-empty");
        let cfg = &self.config;
        let n = stats.vocab_size;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

        // word2vec initialization: inputs uniform in +-0.5/dim, outputs zero.
        let scale = 0.5 / dim as f64;
        let mut input = Mat::random_uniform(n, dim, -scale, scale, &mut rng);
        let mut output = Mat::zeros(n, dim);

        let neg_table = NegativeTable::new(&stats.unigram_counts);
        let total_tokens = stats.n_tokens();
        let keep_prob = keep_probabilities(&stats.unigram_counts, total_tokens, cfg.subsample);

        let total_work = (cfg.epochs * total_tokens) as f64;
        let mut processed = 0usize;
        let mut doc_order: Vec<usize> = (0..stats.corpus.docs().len()).collect();

        let mut h = vec![0.0; dim];
        let mut neu1e = vec![0.0; dim];
        let mut initial_loss = 0.0;
        let mut final_loss = 0.0;
        for epoch in 0..cfg.epochs {
            shuffle(&mut doc_order, &mut rng);
            let mut loss = 0.0;
            let mut positions = 0usize;
            for &di in &doc_order {
                let doc = &stats.corpus.docs()[di];
                for (t, &target) in doc.iter().enumerate() {
                    processed += 1;
                    if cfg.subsample > 0.0 && rng.random::<f64>() > keep_prob[target as usize] {
                        continue;
                    }
                    let b = rng.random_range(1..=cfg.window);
                    let lo = t.saturating_sub(b);
                    let hi = (t + b + 1).min(doc.len());
                    let ctx_count = (hi - lo).saturating_sub(1);
                    if ctx_count == 0 {
                        continue;
                    }
                    // h = mean of context input vectors.
                    h.iter_mut().for_each(|x| *x = 0.0);
                    for (u, &c) in doc[lo..hi].iter().enumerate() {
                        if lo + u != t {
                            vecops::axpy(1.0, input.row(c as usize), &mut h);
                        }
                    }
                    vecops::scale(1.0 / ctx_count as f64, &mut h);

                    let lr = cfg.lr * (1.0 - processed as f64 / total_work).max(cfg.min_lr_frac);
                    neu1e.iter_mut().for_each(|x| *x = 0.0);
                    for s in 0..=cfg.negatives {
                        let (wo, label) = if s == 0 {
                            (target, 1.0)
                        } else {
                            (neg_table.sample(target, &mut rng), 0.0)
                        };
                        let orow = output.row_mut(wo as usize);
                        let f = vecops::sigmoid(vecops::dot(orow, &h));
                        loss -= if label > 0.5 {
                            f.max(1e-12).ln()
                        } else {
                            (1.0 - f).max(1e-12).ln()
                        };
                        let g = (label - f) * lr;
                        vecops::axpy(g, orow, &mut neu1e);
                        vecops::axpy(g, &h, orow);
                    }
                    positions += 1;
                    for (u, &c) in doc[lo..hi].iter().enumerate() {
                        if lo + u != t {
                            vecops::axpy(1.0, &neu1e, input.row_mut(c as usize));
                        }
                    }
                }
            }
            let mean = loss / positions.max(1) as f64;
            if epoch == 0 {
                initial_loss = mean;
            }
            final_loss = mean;
        }
        (
            Embedding::new(input),
            TrainReport {
                initial_loss,
                final_loss,
            },
        )
    }
}

/// word2vec keep probability per word:
/// `(sqrt(f/t) + 1) * t/f` clamped to `[0, 1]`, where `f` is the word's
/// corpus frequency and `t` the subsample threshold.
fn keep_probabilities(counts: &[u64], total: usize, subsample: f64) -> Vec<f64> {
    counts
        .iter()
        .map(|&c| {
            if subsample <= 0.0 || c == 0 {
                return 1.0;
            }
            let f = c as f64 / total as f64;
            (((f / subsample).sqrt() + 1.0) * subsample / f).min(1.0)
        })
        .collect()
}

fn shuffle<T>(xs: &mut [T], rng: &mut impl Rng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_corpus::{CorpusConfig, LatentModel, LatentModelConfig};

    #[test]
    fn loss_decreases_and_is_finite() {
        let model = LatentModel::new(&LatentModelConfig {
            vocab_size: 60,
            n_topics: 4,
            ..Default::default()
        });
        let corpus = model.generate_corpus(&CorpusConfig {
            n_tokens: 15_000,
            ..Default::default()
        });
        let stats = CorpusStats::compute(std::sync::Arc::new(corpus), 60, 4);
        let (emb, report) = CbowTrainer::default().train_with_report(&stats, 8, 0);
        assert!(report.final_loss < report.initial_loss, "{report:?}");
        assert!(emb.mat().is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let model = LatentModel::new(&LatentModelConfig {
            vocab_size: 40,
            n_topics: 4,
            ..Default::default()
        });
        let corpus = model.generate_corpus(&CorpusConfig {
            n_tokens: 4_000,
            ..Default::default()
        });
        let stats = CorpusStats::compute(std::sync::Arc::new(corpus), 40, 4);
        let a = CbowTrainer::default().train(&stats, 6, 9);
        let b = CbowTrainer::default().train(&stats, 6, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn keep_probabilities_shape() {
        // Rare words are always kept; very frequent words are downsampled.
        let counts = vec![50_000u64, 10, 0];
        let p = keep_probabilities(&counts, 100_000, 1e-3);
        assert!(
            p[0] < 0.1,
            "frequent word should be heavily subsampled, got {}",
            p[0]
        );
        assert_eq!(p[1], 1.0);
        assert_eq!(p[2], 1.0);
        // Disabled subsampling keeps everything.
        let p_off = keep_probabilities(&counts, 100_000, 0.0);
        assert!(p_off.iter().all(|&x| x == 1.0));
    }
}
