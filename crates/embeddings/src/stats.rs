//! Precomputed per-corpus statistics shared by all trainers.

use std::sync::Arc;

use embedstab_corpus::{ppmi, Cooc, CoocConfig, Corpus, SparseMatrix};

/// Everything the embedding trainers need from a corpus, computed once:
/// flat and distance-weighted co-occurrence tables, the PPMI matrix, and
/// unigram counts.
///
/// The experiment pipeline computes one `CorpusStats` per corpus and shares
/// it across the whole `algo x dim x seed` training grid.
#[derive(Clone, Debug)]
pub struct CorpusStats {
    /// The underlying corpus (shared so worlds and grids can own stats).
    pub corpus: Arc<Corpus>,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Context window used for counting.
    pub window: usize,
    /// Flat-weighted co-occurrence (for PPMI / MC).
    pub cooc_flat: Cooc,
    /// `1/distance`-weighted co-occurrence (for GloVe).
    pub cooc_weighted: Cooc,
    /// PPMI of the flat counts (for MC).
    pub ppmi: SparseMatrix,
    /// Token counts per word (for negative sampling and subsampling).
    pub unigram_counts: Vec<u64>,
}

impl CorpusStats {
    /// Computes all statistics for `corpus` over a vocabulary of
    /// `vocab_size` words with the given context `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or the corpus contains out-of-vocabulary
    /// ids.
    pub fn compute(corpus: Arc<Corpus>, vocab_size: usize, window: usize) -> Self {
        let cooc_flat = Cooc::count(
            &corpus,
            vocab_size,
            &CoocConfig {
                window,
                distance_weighting: false,
            },
        );
        let cooc_weighted = Cooc::count(
            &corpus,
            vocab_size,
            &CoocConfig {
                window,
                distance_weighting: true,
            },
        );
        let ppmi_mat = ppmi(&cooc_flat);
        let unigram_counts = corpus.token_counts(vocab_size);
        CorpusStats {
            corpus,
            vocab_size,
            window,
            cooc_flat,
            cooc_weighted,
            ppmi: ppmi_mat,
            unigram_counts,
        }
    }

    /// Total number of tokens in the corpus.
    pub fn n_tokens(&self) -> usize {
        self.corpus.n_tokens()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_corpus::Corpus;

    #[test]
    fn stats_are_consistent() {
        let corpus = Arc::new(Corpus::from_docs(vec![vec![0, 1, 2, 1, 0], vec![2, 2, 1]]));
        let stats = CorpusStats::compute(corpus, 3, 2);
        assert_eq!(stats.n_tokens(), 8);
        assert_eq!(stats.unigram_counts, vec![2, 3, 3]);
        assert!(stats.cooc_flat.total() >= stats.cooc_weighted.total());
        assert!(stats.ppmi.nnz() > 0);
    }
}
