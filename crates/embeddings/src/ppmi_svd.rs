//! Truncated-SVD embeddings on the PPMI matrix (Levy & Goldberg, 2014).
//!
//! The paper's matrix-completion algorithm fits the PPMI matrix by SGD;
//! the classical spectral alternative factorizes it directly:
//! `X = U_k diag(s_k)^p` from the rank-`k` SVD of PPMI, with `p = 0.5`
//! (the symmetric split that best matches word2vec's implicit
//! factorization). This trainer rides the randomized range-finder SVD
//! ([`Mat::svd_randomized`]) so the factorization cost is a handful of
//! blocked GEMMs plus a `k x k`-scale Jacobi solve instead of full
//! Jacobi sweeps over the `vocab x vocab` matrix.

use embedstab_corpus::SparseMatrix;
use embedstab_linalg::{Mat, RandomizedSvd, SvdMethod};

use crate::Embedding;

/// Hyperparameters for [`PpmiSvdTrainer`].
#[derive(Clone, Debug)]
pub struct PpmiSvdConfig {
    /// Exponent on the singular values (`0.5` = symmetric split).
    pub eigen_power: f64,
    /// Oversampling columns for the randomized range finder.
    pub oversample: usize,
    /// Subspace (power) iterations sharpening the sketch.
    pub power_iters: usize,
    /// Subspace iterations on the **warm** path
    /// ([`PpmiSvdTrainer::train_warm`]); fewer than `power_iters` because
    /// the previous basis already nearly spans the answer. Clamped to at
    /// least 1 by the warm SVD itself.
    pub warm_power_iters: usize,
}

impl Default for PpmiSvdConfig {
    fn default() -> Self {
        PpmiSvdConfig {
            eigen_power: 0.5,
            oversample: 8,
            power_iters: 2,
            warm_power_iters: 1,
        }
    }
}

/// Trains spectral embeddings by truncated SVD of the PPMI matrix.
#[derive(Clone, Debug, Default)]
pub struct PpmiSvdTrainer {
    config: PpmiSvdConfig,
}

impl PpmiSvdTrainer {
    /// Creates a trainer with the given hyperparameters.
    pub fn new(config: PpmiSvdConfig) -> Self {
        PpmiSvdTrainer { config }
    }

    /// Trains a `dim`-dimensional embedding, deterministic given `seed`
    /// (the seed drives the SVD sketch; the factorization itself is
    /// deterministic).
    ///
    /// # Panics
    ///
    /// Panics if the PPMI matrix is not square or `dim` is zero or larger
    /// than the vocabulary.
    pub fn train(&self, ppmi: &SparseMatrix, dim: usize, seed: u64) -> Embedding {
        let cfg = RandomizedSvd {
            rank: dim,
            oversample: self.config.oversample,
            power_iters: self.config.power_iters,
            seed,
        };
        self.train_with_method(ppmi, dim, SvdMethod::Randomized(cfg))
    }

    /// Trains with an explicit SVD backend; `SvdMethod::Exact` is the
    /// reference the conformance tests compare the sketched path against.
    ///
    /// # Panics
    ///
    /// Panics if the PPMI matrix is not square or `dim` is zero or larger
    /// than the vocabulary.
    pub fn train_with_method(
        &self,
        ppmi: &SparseMatrix,
        dim: usize,
        method: SvdMethod,
    ) -> Embedding {
        assert_eq!(ppmi.n_rows(), ppmi.n_cols(), "PPMI matrix must be square");
        assert!(
            dim > 0 && dim <= ppmi.n_rows(),
            "dim must be in 1..=vocab_size"
        );
        let dense = ppmi.to_dense();
        let svd = dense.svd_with(method);
        self.scale_spectrum(svd, dim)
    }

    /// Trains like [`PpmiSvdTrainer::train`], but seeds the randomized
    /// SVD's range finder with `warm` — an (approximately) orthonormal
    /// basis of the previous retrain's embedding columns — via
    /// [`Mat::svd_randomized_warm`]. This is the incremental-retrain
    /// path: when the PPMI matrix has only drifted by a corpus delta, the
    /// stale basis plus `warm_power_iters` subspace refreshes replaces
    /// the cold sketch and its `power_iters` iterations, roughly halving
    /// the factorization GEMMs. Results track the cold path within the
    /// subspace-convergence tolerance (pinned by `embedstab_stream`'s
    /// keystone test), not bitwise.
    ///
    /// An unusable basis (wrong row count, zero columns) falls back to
    /// the cold path inside the warm SVD, so callers can pass whatever
    /// they have without pre-validating.
    ///
    /// # Panics
    ///
    /// Panics if the PPMI matrix is not square or `dim` is zero or larger
    /// than the vocabulary.
    pub fn train_warm(&self, ppmi: &SparseMatrix, dim: usize, seed: u64, warm: &Mat) -> Embedding {
        assert_eq!(ppmi.n_rows(), ppmi.n_cols(), "PPMI matrix must be square");
        assert!(
            dim > 0 && dim <= ppmi.n_rows(),
            "dim must be in 1..=vocab_size"
        );
        let cfg = RandomizedSvd {
            rank: dim,
            oversample: self.config.oversample,
            power_iters: self.config.warm_power_iters,
            seed,
        };
        // The sparse PPMI matrix is its own SketchOp, so the warm range
        // finder runs on O(nnz * l) sparse products — no densification.
        match embedstab_linalg::svd_randomized_warm_op(ppmi, cfg, warm) {
            Some(svd) => self.scale_spectrum(svd, dim),
            None => self.train(ppmi, dim, seed),
        }
    }

    /// `X = U_k diag(s_k)^p` — the shared tail of every training path.
    fn scale_spectrum(&self, svd: embedstab_linalg::Svd, dim: usize) -> Embedding {
        let k = dim.min(svd.s.len());
        let mut x = svd.u.truncate_cols(k);
        for j in 0..k {
            let w = svd.s[j].powf(self.config.eigen_power);
            for i in 0..x.rows() {
                x[(i, j)] *= w;
            }
        }
        Embedding::new(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_corpus::{Cooc, CoocConfig, CorpusConfig, LatentModel, LatentModelConfig};
    use embedstab_linalg::vecops;

    fn small_world() -> (LatentModel, SparseMatrix) {
        let model = LatentModel::new(&LatentModelConfig {
            vocab_size: 80,
            n_topics: 4,
            ..Default::default()
        });
        let corpus = model.generate_corpus(&CorpusConfig {
            n_tokens: 20_000,
            ..Default::default()
        });
        let cooc = Cooc::count(&corpus, 80, &CoocConfig::default());
        (model, embedstab_corpus::ppmi(&cooc))
    }

    #[test]
    fn recovers_topic_structure() {
        let (model, ppmi) = small_world();
        let emb = PpmiSvdTrainer::default().train(&ppmi, 8, 0);
        let mut same = (0.0, 0usize);
        let mut diff = (0.0, 0usize);
        for i in 0..60u32 {
            for j in (i + 1)..60u32 {
                let sim = vecops::cosine_similarity(emb.vector(i), emb.vector(j));
                if model.word_topics[i as usize] == model.word_topics[j as usize] {
                    same = (same.0 + sim, same.1 + 1);
                } else {
                    diff = (diff.0 + sim, diff.1 + 1);
                }
            }
        }
        let (same_mean, diff_mean) = (same.0 / same.1 as f64, diff.0 / diff.1 as f64);
        assert!(
            same_mean > diff_mean + 0.05,
            "same-topic {same_mean:.3} should exceed different-topic {diff_mean:.3}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, ppmi) = small_world();
        let t = PpmiSvdTrainer::default();
        assert_eq!(t.train(&ppmi, 6, 3), t.train(&ppmi, 6, 3));
    }

    #[test]
    fn warm_train_tracks_cold_train_spectrum() {
        // Warm-start with the orthonormalized previous embedding (trained
        // on the same PPMI): the warm path must reproduce the cold
        // factorization's singular profile to subspace-iteration accuracy.
        let (_, ppmi) = small_world();
        let t = PpmiSvdTrainer::default();
        let cold = t.train(&ppmi, 8, 0);
        let basis = cold.mat().orthonormalize();
        let warm = t.train_warm(&ppmi, 8, 0, &basis);
        assert_eq!(warm.shape(), cold.shape());
        for j in 0..8 {
            let nw = vecops::norm2(&warm.mat().col(j));
            let nc = vecops::norm2(&cold.mat().col(j));
            assert!(
                (nw - nc).abs() / nc < 1e-2,
                "column {j}: warm norm {nw} vs cold {nc}"
            );
        }
        // An unusable basis silently takes the cold path.
        let fallback = t.train_warm(&ppmi, 8, 0, &Mat::zeros(3, 2));
        assert_eq!(fallback.shape(), cold.shape());
    }

    #[test]
    fn randomized_matches_exact_factorization() {
        // The rank-8 cut of this PPMI spectrum lands between two nearly
        // equal singular values, so the *subspace* is only defined up to
        // mixing within that cluster. What both backends must agree on is
        // the spectrum itself: column j of X has norm s_j^p, so the
        // per-column norms are the trained embedding's singular profile.
        let (_, ppmi) = small_world();
        let t = PpmiSvdTrainer::default();
        let xr = t.train(&ppmi, 8, 0);
        let xe = t.train_with_method(&ppmi, 8, SvdMethod::Exact);
        for j in 0..8 {
            let nr = vecops::norm2(&xr.mat().col(j));
            let ne = vecops::norm2(&xe.mat().col(j));
            let rel = (nr - ne).abs() / ne;
            assert!(rel < 1e-2, "column {j}: norm {nr} vs exact {ne} ({rel})");
        }
        // And the sketched factorization captures the same total energy.
        let er = xr.mat().frobenius_norm_sq();
        let ee = xe.mat().frobenius_norm_sq();
        assert!((er - ee).abs() / ee < 1e-2, "energy {er} vs {ee}");
    }
}
