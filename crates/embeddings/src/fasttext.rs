//! fastText-style skipgram with character n-gram buckets
//! (Bojanowski et al., 2017), used for the paper's subword-embedding
//! robustness study (Appendix E.1, Figure 12).

use embedstab_corpus::Vocab;
use embedstab_linalg::{vecops, Mat};
use rand::{Rng, RngExt, SeedableRng};

use crate::negative::NegativeTable;
use crate::stats::CorpusStats;
use crate::{Embedding, TrainReport};

/// Hyperparameters for [`FastTextTrainer`].
#[derive(Clone, Debug)]
pub struct FastTextConfig {
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate, decayed linearly.
    pub lr: f64,
    /// Floor for the linear decay, as a fraction of `lr`.
    pub min_lr_frac: f64,
    /// Maximum context half-window (sampled per position).
    pub window: usize,
    /// Negative samples per (center, context) pair.
    pub negatives: usize,
    /// Frequent-word subsampling threshold; 0 disables.
    pub subsample: f64,
    /// Number of hash buckets for character n-grams.
    pub buckets: usize,
    /// Minimum character n-gram length.
    pub minn: usize,
    /// Maximum character n-gram length.
    pub maxn: usize,
}

impl Default for FastTextConfig {
    fn default() -> Self {
        FastTextConfig {
            epochs: 8,
            lr: 0.05,
            min_lr_frac: 1e-4,
            window: 5,
            negatives: 5,
            subsample: 1e-3,
            buckets: 20_000,
            minn: 3,
            maxn: 5,
        }
    }
}

/// Trains subword skipgram embeddings: each word is represented by its own
/// vector plus the vectors of its hashed character n-grams.
#[derive(Clone, Debug, Default)]
pub struct FastTextTrainer {
    config: FastTextConfig,
}

/// FNV-1a hash, the same family fastText uses for n-gram bucketing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Computes the bucket ids of all character n-grams of `<word>`.
fn word_ngrams(word: &str, minn: usize, maxn: usize, buckets: usize) -> Vec<u32> {
    let padded: Vec<char> = format!("<{word}>").chars().collect();
    let mut out = Vec::new();
    for len in minn..=maxn {
        if padded.len() < len {
            break;
        }
        for start in 0..=(padded.len() - len) {
            let gram: String = padded[start..start + len].iter().collect();
            out.push((fnv1a(gram.as_bytes()) % buckets as u64) as u32);
        }
    }
    out
}

impl FastTextTrainer {
    /// Creates a trainer with the given hyperparameters.
    pub fn new(config: FastTextConfig) -> Self {
        FastTextTrainer { config }
    }

    /// Trains a `dim`-dimensional embedding, deterministic given `seed`.
    ///
    /// The returned embedding row for word `w` is the composed
    /// representation `(v_w + sum of n-gram vectors) / (1 + #ngrams)`, which
    /// is what fastText exports.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero, the corpus is empty, or the vocabulary size
    /// disagrees with the corpus statistics.
    pub fn train(&self, stats: &CorpusStats, vocab: &Vocab, dim: usize, seed: u64) -> Embedding {
        self.train_with_report(stats, vocab, dim, seed).0
    }

    /// Trains and also returns first/last-epoch mean losses.
    ///
    /// # Panics
    ///
    /// See [`FastTextTrainer::train`].
    pub fn train_with_report(
        &self,
        stats: &CorpusStats,
        vocab: &Vocab,
        dim: usize,
        seed: u64,
    ) -> (Embedding, TrainReport) {
        assert!(dim > 0, "dim must be positive");
        assert!(stats.n_tokens() > 0, "corpus must be non-empty");
        assert_eq!(vocab.len(), stats.vocab_size, "vocab/stats size mismatch");
        let cfg = &self.config;
        let n = stats.vocab_size;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

        let ngrams: Vec<Vec<u32>> = (0..n as u32)
            .map(|w| word_ngrams(vocab.word(w), cfg.minn, cfg.maxn, cfg.buckets))
            .collect();

        let scale = 0.5 / dim as f64;
        let mut word_vecs = Mat::random_uniform(n, dim, -scale, scale, &mut rng);
        let mut gram_vecs = Mat::random_uniform(cfg.buckets, dim, -scale, scale, &mut rng);
        let mut output = Mat::zeros(n, dim);

        let neg_table = NegativeTable::new(&stats.unigram_counts);
        let total = stats.n_tokens();
        let keep_prob: Vec<f64> = stats
            .unigram_counts
            .iter()
            .map(|&c| {
                if cfg.subsample <= 0.0 || c == 0 {
                    return 1.0;
                }
                let f = c as f64 / total as f64;
                (((f / cfg.subsample).sqrt() + 1.0) * cfg.subsample / f).min(1.0)
            })
            .collect();

        let total_work = (cfg.epochs * total) as f64;
        let mut processed = 0usize;
        let mut doc_order: Vec<usize> = (0..stats.corpus.docs().len()).collect();

        let mut rep = vec![0.0; dim];
        let mut neu1e = vec![0.0; dim];
        let mut initial_loss = 0.0;
        let mut final_loss = 0.0;
        for epoch in 0..cfg.epochs {
            shuffle(&mut doc_order, &mut rng);
            let mut loss = 0.0;
            let mut pairs = 0usize;
            for &di in &doc_order {
                let doc = &stats.corpus.docs()[di];
                for (t, &center) in doc.iter().enumerate() {
                    processed += 1;
                    if cfg.subsample > 0.0 && rng.random::<f64>() > keep_prob[center as usize] {
                        continue;
                    }
                    let lr = cfg.lr * (1.0 - processed as f64 / total_work).max(cfg.min_lr_frac);
                    let grams = &ngrams[center as usize];
                    let denom = (1 + grams.len()) as f64;
                    // rep = (v_center + sum of n-gram vectors) / (1 + #ngrams)
                    rep.copy_from_slice(word_vecs.row(center as usize));
                    for &g in grams {
                        vecops::axpy(1.0, gram_vecs.row(g as usize), &mut rep);
                    }
                    vecops::scale(1.0 / denom, &mut rep);

                    let b = rng.random_range(1..=cfg.window);
                    let lo = t.saturating_sub(b);
                    let hi = (t + b + 1).min(doc.len());
                    for (u, &ctx) in doc[lo..hi].iter().enumerate() {
                        if lo + u == t {
                            continue;
                        }
                        neu1e.iter_mut().for_each(|x| *x = 0.0);
                        for s in 0..=cfg.negatives {
                            let (wo, label) = if s == 0 {
                                (ctx, 1.0)
                            } else {
                                (neg_table.sample(ctx, &mut rng), 0.0)
                            };
                            let orow = output.row_mut(wo as usize);
                            let f = vecops::sigmoid(vecops::dot(orow, &rep));
                            loss -= if label > 0.5 {
                                f.max(1e-12).ln()
                            } else {
                                (1.0 - f).max(1e-12).ln()
                            };
                            let g = (label - f) * lr;
                            vecops::axpy(g, orow, &mut neu1e);
                            vecops::axpy(g, &rep, orow);
                        }
                        pairs += 1;
                        // Spread the input gradient over the components.
                        vecops::scale(1.0 / denom, &mut neu1e);
                        vecops::axpy(1.0, &neu1e, word_vecs.row_mut(center as usize));
                        for &g in grams {
                            vecops::axpy(1.0, &neu1e, gram_vecs.row_mut(g as usize));
                        }
                        // rep changed implicitly; recompute lazily next pair.
                        rep.copy_from_slice(word_vecs.row(center as usize));
                        for &g in grams {
                            vecops::axpy(1.0, gram_vecs.row(g as usize), &mut rep);
                        }
                        vecops::scale(1.0 / denom, &mut rep);
                    }
                }
            }
            let mean = loss / pairs.max(1) as f64;
            if epoch == 0 {
                initial_loss = mean;
            }
            final_loss = mean;
        }

        // Export composed word representations.
        let mut out = Mat::zeros(n, dim);
        for w in 0..n {
            let grams = &ngrams[w];
            let denom = (1 + grams.len()) as f64;
            let row = out.row_mut(w);
            row.copy_from_slice(word_vecs.row(w));
            for &g in grams {
                vecops::axpy(1.0, gram_vecs.row(g as usize), row);
            }
            vecops::scale(1.0 / denom, row);
        }
        (
            Embedding::new(out),
            TrainReport {
                initial_loss,
                final_loss,
            },
        )
    }
}

fn shuffle<T>(xs: &mut [T], rng: &mut impl Rng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_corpus::{CorpusConfig, LatentModel, LatentModelConfig};

    #[test]
    fn ngrams_are_stable_and_bounded() {
        let a = word_ngrams("bakelu", 3, 5, 1000);
        let b = word_ngrams("bakelu", 3, 5, 1000);
        assert_eq!(a, b);
        assert!(a.iter().all(|&g| g < 1000));
        // "<bakelu>" has 8 chars: 6 trigrams + 5 four-grams + 4 five-grams.
        assert_eq!(a.len(), 6 + 5 + 4);
    }

    #[test]
    fn shared_prefix_words_share_ngrams() {
        let a = word_ngrams("bakelu", 3, 5, 100_000);
        let b = word_ngrams("bakemo", 3, 5, 100_000);
        let shared = a.iter().filter(|g| b.contains(g)).count();
        assert!(shared >= 3, "topic-prefixed words should share n-grams");
    }

    #[test]
    fn loss_decreases() {
        let model = LatentModel::new(&LatentModelConfig {
            vocab_size: 50,
            n_topics: 4,
            ..Default::default()
        });
        let corpus = model.generate_corpus(&CorpusConfig {
            n_tokens: 8_000,
            ..Default::default()
        });
        let stats = CorpusStats::compute(std::sync::Arc::new(corpus), 50, 4);
        let trainer = FastTextTrainer::new(FastTextConfig {
            epochs: 4,
            buckets: 2_000,
            ..Default::default()
        });
        let (emb, report) = trainer.train_with_report(&stats, &model.vocab, 8, 0);
        assert!(report.final_loss < report.initial_loss, "{report:?}");
        assert!(emb.mat().is_finite());
        assert_eq!(emb.shape(), (50, 8));
    }
}
