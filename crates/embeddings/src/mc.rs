//! Online matrix completion (MC) embeddings on the PPMI matrix.
//!
//! Solves `min_X sum_{(i,j) in observed} (X_i . X_j - A_ij)^2` with
//! per-entry SGD, following the online matrix-completion approach of
//! Jin et al. (2016) that the paper uses as its third embedding algorithm.

use embedstab_corpus::SparseMatrix;
use embedstab_linalg::Mat;
use rand::{Rng, RngExt, SeedableRng};

use crate::{Embedding, TrainReport};

/// Hyperparameters for [`McTrainer`] (paper Table 4: lr 0.2 with decay
/// starting after 20 epochs).
#[derive(Clone, Debug)]
pub struct McConfig {
    /// Number of passes over the observed entries.
    pub epochs: usize,
    /// Initial SGD learning rate.
    pub lr: f64,
    /// Epoch after which the learning rate is halved every epoch.
    pub lr_decay_start: usize,
    /// Half-width of the uniform initialization (scaled by `1/sqrt(dim)`).
    pub init_scale: f64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            epochs: 25,
            lr: 0.1,
            lr_decay_start: 15,
            init_scale: 0.5,
        }
    }
}

/// Trains matrix-completion embeddings from a PPMI matrix.
#[derive(Clone, Debug, Default)]
pub struct McTrainer {
    config: McConfig,
}

impl McTrainer {
    /// Creates a trainer with the given hyperparameters.
    pub fn new(config: McConfig) -> Self {
        McTrainer { config }
    }

    /// Trains a `dim`-dimensional embedding, deterministic given `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the PPMI matrix is not square or `dim` is zero.
    pub fn train(&self, ppmi: &SparseMatrix, dim: usize, seed: u64) -> Embedding {
        self.train_with_report(ppmi, dim, seed).0
    }

    /// Trains and also returns first/last-epoch mean losses.
    ///
    /// # Panics
    ///
    /// Panics if the PPMI matrix is not square or `dim` is zero.
    pub fn train_with_report(
        &self,
        ppmi: &SparseMatrix,
        dim: usize,
        seed: u64,
    ) -> (Embedding, TrainReport) {
        assert_eq!(ppmi.n_rows(), ppmi.n_cols(), "PPMI matrix must be square");
        assert!(dim > 0, "dim must be positive");
        let n = ppmi.n_rows();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let scale = self.config.init_scale / (dim as f64).sqrt();
        let mut x = Mat::random_uniform(n, dim, -scale, scale, &mut rng);
        let mut entries = ppmi.to_entries();

        let mut initial_loss = 0.0;
        let mut final_loss = 0.0;
        let mut lr = self.config.lr;
        let mut xi_old = vec![0.0; dim];
        for epoch in 0..self.config.epochs {
            if epoch > self.config.lr_decay_start {
                lr *= 0.5;
            }
            shuffle(&mut entries, &mut rng);
            let mut loss = 0.0;
            for &(i, j, a) in &entries {
                let (i, j) = (i as usize, j as usize);
                if i == j {
                    // Diagonal entries pin row norms; fit them too.
                    let row = x.row_mut(i);
                    let p = embedstab_linalg::vecops::dot(row, row);
                    let e = p - a;
                    loss += e * e;
                    let g = (2.0 * lr * e).clamp(-0.5, 0.5);
                    for v in row.iter_mut() {
                        *v -= g * *v;
                    }
                    continue;
                }
                let (xi, xj) = x.two_rows_mut(i, j);
                let p = embedstab_linalg::vecops::dot(xi, xj);
                let e = p - a;
                loss += e * e;
                let g = (lr * e).clamp(-0.5, 0.5);
                xi_old.copy_from_slice(xi);
                embedstab_linalg::vecops::axpy(-g, xj, xi);
                embedstab_linalg::vecops::axpy(-g, &xi_old, xj);
            }
            let mean = loss / entries.len().max(1) as f64;
            if epoch == 0 {
                initial_loss = mean;
            }
            final_loss = mean;
        }
        (
            Embedding::new(x),
            TrainReport {
                initial_loss,
                final_loss,
            },
        )
    }
}

fn shuffle<T>(xs: &mut [T], rng: &mut impl Rng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_corpus::{Cooc, CoocConfig, CorpusConfig, LatentModel, LatentModelConfig};

    fn small_ppmi() -> SparseMatrix {
        let model = LatentModel::new(&LatentModelConfig {
            vocab_size: 80,
            n_topics: 4,
            ..Default::default()
        });
        let corpus = model.generate_corpus(&CorpusConfig {
            n_tokens: 20_000,
            ..Default::default()
        });
        let cooc = Cooc::count(&corpus, 80, &CoocConfig::default());
        embedstab_corpus::ppmi(&cooc)
    }

    #[test]
    fn loss_decreases() {
        let ppmi = small_ppmi();
        let (emb, report) = McTrainer::default().train_with_report(&ppmi, 8, 0);
        assert!(report.final_loss < report.initial_loss * 0.8, "{report:?}");
        assert!(emb.mat().is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let ppmi = small_ppmi();
        let a = McTrainer::default().train(&ppmi, 6, 3);
        let b = McTrainer::default().train(&ppmi, 6, 3);
        assert_eq!(a, b);
        let c = McTrainer::default().train(&ppmi, 6, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn reconstructs_planted_low_rank_gram() {
        // Plant A = Z Z^T with Z in R^{20x4} and observe all entries; MC with
        // dim 4 should reach a small residual.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let z = Mat::random_normal(20, 4, &mut rng).scale(0.7);
        let a = z.matmul_nt(&z);
        let mut sm = SparseMatrix::new(20, 20);
        for i in 0..20u32 {
            for j in 0..20u32 {
                sm.push(i, j, a[(i as usize, j as usize)]);
            }
        }
        let trainer = McTrainer::new(McConfig {
            epochs: 200,
            lr: 0.05,
            lr_decay_start: 150,
            init_scale: 0.5,
        });
        let (emb, report) = trainer.train_with_report(&sm, 4, 0);
        assert!(report.final_loss < 0.05, "final loss {}", report.final_loss);
        let recon = emb.mat().matmul_nt(emb.mat());
        let rel = recon.sub(&a).frobenius_norm() / a.frobenius_norm();
        assert!(rel < 0.2, "relative reconstruction error {rel}");
    }
}
