//! Quality metrics for the downstream tasks (the instability metrics live
//! in `embedstab-core`).

use crate::tasks::ner::TaggedSentence;

/// Fraction of equal elements between two equal-length sequences.
///
/// # Panics
///
/// Panics if lengths differ or the sequences are empty.
pub fn accuracy<T: PartialEq>(preds: &[T], golds: &[T]) -> f64 {
    assert_eq!(preds.len(), golds.len(), "length mismatch");
    assert!(!preds.is_empty(), "empty predictions");
    let correct = preds.iter().zip(golds).filter(|(p, g)| p == g).count();
    correct as f64 / preds.len() as f64
}

/// Token-level micro-F1 over entity classes (tag != O), the quality metric
/// for the NER task (a token-level simplification of CoNLL span F1).
///
/// # Panics
///
/// Panics if the prediction and sentence shapes disagree.
pub fn entity_micro_f1(preds: &[Vec<u8>], sentences: &[TaggedSentence]) -> f64 {
    assert_eq!(preds.len(), sentences.len(), "sentence count mismatch");
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (p, s) in preds.iter().zip(sentences) {
        assert_eq!(p.len(), s.tags.len(), "token count mismatch");
        for (&pt, &gt) in p.iter().zip(&s.tags) {
            match (pt != 0, gt != 0) {
                (true, true) => {
                    if pt == gt {
                        tp += 1;
                    } else {
                        fp += 1;
                        fn_ += 1;
                    }
                }
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
    }
    if 2 * tp + fp + fn_ == 0 {
        return 0.0;
    }
    2.0 * tp as f64 / (2 * tp + fp + fn_) as f64
}

/// Flattens per-sentence tag predictions and the entity mask for
/// disagreement computation over entity tokens only (paper Section 3).
///
/// Both models' predictions must be flattened with the same sentences so
/// the positions line up.
pub fn flatten_tags(preds: &[Vec<u8>], sentences: &[TaggedSentence]) -> (Vec<u8>, Vec<bool>) {
    assert_eq!(preds.len(), sentences.len(), "sentence count mismatch");
    let mut flat = Vec::new();
    let mut mask = Vec::new();
    for (p, s) in preds.iter().zip(sentences) {
        assert_eq!(p.len(), s.tags.len(), "token count mismatch");
        flat.extend_from_slice(p);
        mask.extend(s.entity_mask());
    }
    (flat, mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(tokens: Vec<u32>, tags: Vec<u8>) -> TaggedSentence {
        TaggedSentence { tokens, tags }
    }

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
    }

    #[test]
    fn perfect_predictions_give_f1_one() {
        let sents = vec![sent(vec![0, 1, 2], vec![0, 1, 2])];
        let preds = vec![vec![0u8, 1, 2]];
        assert_eq!(entity_micro_f1(&preds, &sents), 1.0);
    }

    #[test]
    fn all_o_predictions_give_f1_zero() {
        let sents = vec![sent(vec![0, 1], vec![1, 2])];
        let preds = vec![vec![0u8, 0]];
        assert_eq!(entity_micro_f1(&preds, &sents), 0.0);
    }

    #[test]
    fn wrong_class_counts_both_fp_and_fn() {
        // gold PER predicted ORG: tp 0, fp 1, fn 1 -> F1 0.
        let sents = vec![sent(vec![0], vec![1])];
        let preds = vec![vec![2u8]];
        assert_eq!(entity_micro_f1(&preds, &sents), 0.0);
    }

    #[test]
    fn flatten_aligns_mask() {
        let sents = vec![sent(vec![0, 1], vec![0, 3]), sent(vec![2], vec![4])];
        let preds = vec![vec![0u8, 3], vec![0u8]];
        let (flat, mask) = flatten_tags(&preds, &sents);
        assert_eq!(flat, vec![0, 3, 0]);
        assert_eq!(mask, vec![false, true, true]);
    }
}
