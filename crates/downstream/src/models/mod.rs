//! Downstream models trained on top of (fixed) embeddings.

pub mod bow;
pub mod cnn;
pub mod crf;
pub mod logreg;
pub mod lstm;

pub use bow::{bow_features, BowSentimentModel, BowTrainOptions};
pub use cnn::{CnnConfig, CnnSentimentModel};
pub use crf::Crf;
pub use logreg::{LogReg, TrainSpec};
pub use lstm::{BiLstmCrfTagger, BiLstmTagger, LstmConfig};
