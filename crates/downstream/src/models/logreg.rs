//! Binary logistic regression on precomputed feature vectors.
//!
//! This is the paper's "linear bag-of-words model": features are averaged
//! word vectors (built by [`crate::models::bow`]) or contextual features
//! (built by the `embedstab-ctx` crate), and the classifier is trained with
//! Adam (paper Table 5b) from a seeded random initialization.

use embedstab_linalg::{vecops, Mat};
use rand::SeedableRng;

use crate::nn::{shuffle, Adam};

/// Training hyperparameters shared by the simple classifiers.
#[derive(Clone, Debug)]
pub struct TrainSpec {
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// L2 regularization strength.
    pub l2: f64,
    /// Seed for weight initialization (paper Appendix E.3 isolates this).
    pub init_seed: u64,
    /// Seed for mini-batch sampling order (likewise isolated).
    pub sample_seed: u64,
}

impl Default for TrainSpec {
    fn default() -> Self {
        TrainSpec {
            lr: 1e-3,
            epochs: 40,
            batch: 32,
            l2: 1e-4,
            init_seed: 0,
            sample_seed: 0,
        }
    }
}

/// A trained binary logistic-regression model.
#[derive(Clone, Debug)]
pub struct LogReg {
    w: Vec<f64>,
    b: f64,
}

impl LogReg {
    /// Assembles a model from explicit parameters (used by trainers that
    /// optimize the parameters themselves, e.g. the fine-tuning mode).
    pub fn from_parts(w: Vec<f64>, b: f64) -> LogReg {
        LogReg { w, b }
    }

    /// Trains on rows of `features` with the given binary labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != features.rows()` or the dataset is empty.
    pub fn train(features: &Mat, labels: &[bool], spec: &TrainSpec) -> LogReg {
        assert_eq!(labels.len(), features.rows(), "label count must match rows");
        assert!(!labels.is_empty(), "cannot train on an empty dataset");
        let d = features.cols();
        let mut init_rng = rand::rngs::StdRng::seed_from_u64(spec.init_seed);
        let mut params = Mat::random_normal(1, d + 1, &mut init_rng)
            .scale(0.01)
            .into_vec();
        let mut opt = Adam::new(d + 1, spec.lr);
        let mut order: Vec<usize> = (0..labels.len()).collect();
        let mut sample_rng = rand::rngs::StdRng::seed_from_u64(spec.sample_seed);
        let mut grads = vec![0.0; d + 1];
        for _ in 0..spec.epochs {
            shuffle(&mut order, &mut sample_rng);
            for chunk in order.chunks(spec.batch.max(1)) {
                grads.iter_mut().for_each(|g| *g = 0.0);
                let inv = 1.0 / chunk.len() as f64;
                for &i in chunk {
                    let x = features.row(i);
                    let (w, b) = params.split_at(d);
                    let z = vecops::dot(w, x) + b[0];
                    let p = vecops::sigmoid(z);
                    let g = (p - if labels[i] { 1.0 } else { 0.0 }) * inv;
                    vecops::axpy(g, x, &mut grads[..d]);
                    grads[d] += g;
                }
                if spec.l2 > 0.0 {
                    for j in 0..d {
                        grads[j] += spec.l2 * params[j];
                    }
                }
                opt.step(&mut params, &grads);
            }
        }
        let b = params[d];
        params.truncate(d);
        LogReg { w: params, b }
    }

    /// The decision value `w . x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimension.
    pub fn decision(&self, x: &[f64]) -> f64 {
        vecops::dot(&self.w, x) + self.b
    }

    /// Predicted label for one feature vector.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision(x) > 0.0
    }

    /// Decision values for every row as one `Mat::matvec` call.
    ///
    /// Prediction disagreement evaluates every test set once per config
    /// pair, so batch prediction is a downstream hot path; routing it
    /// through the linalg entry point keeps it a single call site for
    /// future batching/kernel work (the arithmetic is the same per-row
    /// dot product as [`LogReg::decision`]).
    ///
    /// # Panics
    ///
    /// Panics if `features.cols()` differs from the training dimension.
    pub fn decision_all(&self, features: &Mat) -> Vec<f64> {
        let mut z = features.matvec(&self.w);
        for v in &mut z {
            *v += self.b;
        }
        z
    }

    /// Predicted labels for every row.
    pub fn predict_all(&self, features: &Mat) -> Vec<bool> {
        self.decision_all(features)
            .iter()
            .map(|&z| z > 0.0)
            .collect()
    }

    /// Fraction of rows classified correctly.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != features.rows()`.
    pub fn accuracy(&self, features: &Mat, labels: &[bool]) -> f64 {
        assert_eq!(labels.len(), features.rows(), "label count must match rows");
        let correct = self
            .predict_all(features)
            .iter()
            .zip(labels)
            .filter(|(p, l)| p == l)
            .count();
        correct as f64 / labels.len() as f64
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable(n: usize, seed: u64) -> (Mat, Vec<bool>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Mat::random_normal(n, 4, &mut rng);
        let labels = (0..n).map(|i| x[(i, 0)] + 0.5 * x[(i, 1)] > 0.0).collect();
        (x, labels)
    }

    #[test]
    fn learns_separable_data() {
        let (x, y) = linearly_separable(400, 0);
        let model = LogReg::train(
            &x,
            &y,
            &TrainSpec {
                lr: 0.01,
                epochs: 80,
                ..Default::default()
            },
        );
        assert!(model.accuracy(&x, &y) > 0.95);
    }

    #[test]
    fn deterministic_given_seeds() {
        let (x, y) = linearly_separable(100, 1);
        let spec = TrainSpec::default();
        let a = LogReg::train(&x, &y, &spec);
        let b = LogReg::train(&x, &y, &spec);
        assert_eq!(a.w, b.w);
        assert_eq!(a.b, b.b);
    }

    #[test]
    fn seeds_change_the_model() {
        let (x, y) = linearly_separable(100, 2);
        let a = LogReg::train(&x, &y, &TrainSpec::default());
        let b = LogReg::train(
            &x,
            &y,
            &TrainSpec {
                init_seed: 9,
                ..Default::default()
            },
        );
        let c = LogReg::train(
            &x,
            &y,
            &TrainSpec {
                sample_seed: 9,
                ..Default::default()
            },
        );
        assert_ne!(a.w, b.w, "init seed must matter");
        assert_ne!(a.w, c.w, "sampling seed must matter");
    }

    #[test]
    fn gradient_check() {
        // Finite-difference check of the loss gradient at a random point.
        let (x, y) = linearly_separable(12, 3);
        let d = x.cols();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let params = Mat::random_normal(1, d + 1, &mut rng).scale(0.3).into_vec();
        let l2 = 0.01;
        let loss = |p: &[f64]| -> f64 {
            let mut total = 0.0;
            for i in 0..x.rows() {
                let z = vecops::dot(&p[..d], x.row(i)) + p[d];
                let t = if y[i] { 1.0 } else { 0.0 };
                // Stable binary cross-entropy.
                total += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
            }
            total /= x.rows() as f64;
            total + 0.5 * l2 * p[..d].iter().map(|w| w * w).sum::<f64>()
        };
        // Analytic gradient (mirrors the training loop).
        let mut grads = vec![0.0; d + 1];
        let inv = 1.0 / x.rows() as f64;
        for i in 0..x.rows() {
            let z = vecops::dot(&params[..d], x.row(i)) + params[d];
            let p = vecops::sigmoid(z);
            let g = (p - if y[i] { 1.0 } else { 0.0 }) * inv;
            vecops::axpy(g, x.row(i), &mut grads[..d]);
            grads[d] += g;
        }
        for j in 0..d {
            grads[j] += l2 * params[j];
        }
        let eps = 1e-6;
        for j in 0..=d {
            let mut plus = params.clone();
            plus[j] += eps;
            let mut minus = params.clone();
            minus[j] -= eps;
            let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!(
                (fd - grads[j]).abs() < 1e-6,
                "param {j}: finite-diff {fd} vs analytic {}",
                grads[j]
            );
        }
    }
}
