//! BiLSTM sequence tagger (Akbik et al., 2018 architecture, minus the
//! character-level features), used for the paper's NER task, plus the
//! BiLSTM-CRF variant of Appendix E.2.
//!
//! The LSTM forward and backward passes (backpropagation through time) are
//! written from scratch and verified against finite differences in the
//! test suite.

use embedstab_embeddings::Embedding;
use embedstab_linalg::{vecops, Mat};
use rand::{Rng, RngExt, SeedableRng};

use crate::models::crf::Crf;
use crate::nn::{clip_global_norm, shuffle, Adam};
use crate::tasks::ner::{TaggedSentence, N_TAGS};

/// Hyperparameters for the BiLSTM taggers.
#[derive(Clone, Debug)]
pub struct LstmConfig {
    /// Hidden units per direction.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Probability of zeroing a whole word vector during training
    /// (flair-style word dropout; paper Table 6b uses 0.05).
    pub word_dropout: f64,
    /// Maximum global gradient norm per parameter block.
    pub clip: f64,
    /// Seed for weight initialization.
    pub init_seed: u64,
    /// Seed for sentence order and dropout.
    pub sample_seed: u64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        LstmConfig {
            hidden: 16,
            lr: 0.01,
            epochs: 5,
            word_dropout: 0.05,
            clip: 5.0,
            init_seed: 0,
            sample_seed: 0,
        }
    }
}

/// One LSTM direction: gates stacked as `[i; f; g; o]` in a
/// `4h x (d + h)` weight matrix plus a `4h` bias.
#[derive(Clone, Debug)]
struct LstmDir {
    w: Mat,
    b: Vec<f64>,
    h: usize,
    d: usize,
}

/// Per-timestep activations saved by the forward pass.
struct DirCache {
    gates: Vec<Vec<f64>>, // 4h per step: [i, f, g, o] post-activation
    cs: Vec<Vec<f64>>,
    tanh_cs: Vec<Vec<f64>>,
    hs: Vec<Vec<f64>>,
}

impl LstmDir {
    fn new(d: usize, h: usize, rng: &mut impl Rng) -> Self {
        let scale = 1.0 / (h as f64).sqrt();
        let w = Mat::random_uniform(4 * h, d + h, -scale, scale, rng);
        let mut b = vec![0.0; 4 * h];
        // Standard forget-gate bias initialization.
        for fb in b[h..2 * h].iter_mut() {
            *fb = 1.0;
        }
        LstmDir { w, b, h, d }
    }

    /// Runs the direction over `xs` (already in processing order).
    fn forward(&self, xs: &[Vec<f64>]) -> DirCache {
        let (h, d) = (self.h, self.d);
        let t_len = xs.len();
        let mut cache = DirCache {
            gates: Vec::with_capacity(t_len),
            cs: Vec::with_capacity(t_len),
            tanh_cs: Vec::with_capacity(t_len),
            hs: Vec::with_capacity(t_len),
        };
        let mut h_prev = vec![0.0; h];
        let mut c_prev = vec![0.0; h];
        let mut zin = vec![0.0; d + h];
        for x in xs {
            zin[..d].copy_from_slice(x);
            zin[d..].copy_from_slice(&h_prev);
            let mut gates = vec![0.0; 4 * h];
            for (r, gr) in gates.iter_mut().enumerate() {
                *gr = vecops::dot(self.w.row(r), &zin) + self.b[r];
            }
            let mut c = vec![0.0; h];
            let mut tanh_c = vec![0.0; h];
            let mut h_new = vec![0.0; h];
            for j in 0..h {
                let i = vecops::sigmoid(gates[j]);
                let f = vecops::sigmoid(gates[h + j]);
                let g = gates[2 * h + j].tanh();
                let o = vecops::sigmoid(gates[3 * h + j]);
                gates[j] = i;
                gates[h + j] = f;
                gates[2 * h + j] = g;
                gates[3 * h + j] = o;
                c[j] = f * c_prev[j] + i * g;
                tanh_c[j] = c[j].tanh();
                h_new[j] = o * tanh_c[j];
            }
            cache.gates.push(gates);
            cache.cs.push(c.clone());
            cache.tanh_cs.push(tanh_c);
            cache.hs.push(h_new.clone());
            h_prev = h_new;
            c_prev = c;
        }
        cache
    }

    /// Backpropagation through time. `dhs[t]` is the loss gradient flowing
    /// into `h_t` from the output layer; returns `(dW, db)`.
    fn backward(&self, xs: &[Vec<f64>], cache: &DirCache, dhs: &[Vec<f64>]) -> (Mat, Vec<f64>) {
        let (h, d) = (self.h, self.d);
        let t_len = xs.len();
        let mut gw = Mat::zeros(4 * h, d + h);
        let mut gb = vec![0.0; 4 * h];
        let mut dh_rec = vec![0.0; h];
        let mut dc_rec = vec![0.0; h];
        let mut da = vec![0.0; 4 * h];
        let mut zin = vec![0.0; d + h];
        for t in (0..t_len).rev() {
            let gates = &cache.gates[t];
            let tanh_c = &cache.tanh_cs[t];
            let c_prev: &[f64] = if t == 0 { &[] } else { &cache.cs[t - 1] };
            let h_prev: &[f64] = if t == 0 { &[] } else { &cache.hs[t - 1] };
            for j in 0..h {
                let dh_tot = dhs[t][j] + dh_rec[j];
                let o = gates[3 * h + j];
                let dc_tot = dc_rec[j] + dh_tot * o * (1.0 - tanh_c[j] * tanh_c[j]);
                let i = gates[j];
                let f = gates[h + j];
                let g = gates[2 * h + j];
                let cp = if t == 0 { 0.0 } else { c_prev[j] };
                da[j] = dc_tot * g * i * (1.0 - i);
                da[h + j] = dc_tot * cp * f * (1.0 - f);
                da[2 * h + j] = dc_tot * i * (1.0 - g * g);
                da[3 * h + j] = dh_tot * tanh_c[j] * o * (1.0 - o);
                dc_rec[j] = dc_tot * f;
            }
            zin[..d].copy_from_slice(&xs[t]);
            if t == 0 {
                zin[d..].iter_mut().for_each(|z| *z = 0.0);
            } else {
                zin[d..].copy_from_slice(h_prev);
            }
            for (r, &da_r) in da.iter().enumerate() {
                if da_r != 0.0 {
                    vecops::axpy(da_r, &zin, gw.row_mut(r));
                    gb[r] += da_r;
                }
            }
            // Recurrent gradient into h_{t-1}.
            dh_rec.iter_mut().for_each(|x| *x = 0.0);
            for (r, &da_r) in da.iter().enumerate() {
                if da_r != 0.0 {
                    let wrow = &self.w.row(r)[d..];
                    vecops::axpy(da_r, wrow, &mut dh_rec);
                }
            }
        }
        (gw, gb)
    }
}

/// Shared BiLSTM encoder + linear emission layer.
#[derive(Clone, Debug)]
struct BiLstmCore {
    fwd: LstmDir,
    bwd: LstmDir,
    w_out: Mat, // n_tags x 2h
    b_out: Vec<f64>,
}

struct CoreGrads {
    wf: Mat,
    bf: Vec<f64>,
    wb: Mat,
    bb: Vec<f64>,
    wout: Mat,
    bout: Vec<f64>,
}

impl BiLstmCore {
    fn new(d: usize, h: usize, n_tags: usize, rng: &mut impl Rng) -> Self {
        BiLstmCore {
            fwd: LstmDir::new(d, h, rng),
            bwd: LstmDir::new(d, h, rng),
            w_out: Mat::random_uniform(n_tags, 2 * h, -0.1, 0.1, rng),
            b_out: vec![0.0; n_tags],
        }
    }

    /// Emission scores (`T x n_tags`) plus the direction caches.
    fn emissions(&self, xs: &[Vec<f64>]) -> (Mat, DirCache, DirCache) {
        let t_len = xs.len();
        let h = self.fwd.h;
        let fcache = self.fwd.forward(xs);
        let rev: Vec<Vec<f64>> = xs.iter().rev().cloned().collect();
        let bcache = self.bwd.forward(&rev);
        let n_tags = self.w_out.rows();
        let mut emis = Mat::zeros(t_len, n_tags);
        let mut concat = vec![0.0; 2 * h];
        for t in 0..t_len {
            concat[..h].copy_from_slice(&fcache.hs[t]);
            concat[h..].copy_from_slice(&bcache.hs[t_len - 1 - t]);
            for k in 0..n_tags {
                emis[(t, k)] = vecops::dot(self.w_out.row(k), &concat) + self.b_out[k];
            }
        }
        (emis, fcache, bcache)
    }

    /// Backward pass from emission gradients to all parameter gradients.
    fn backward(
        &self,
        xs: &[Vec<f64>],
        fcache: &DirCache,
        bcache: &DirCache,
        d_emis: &Mat,
    ) -> CoreGrads {
        let t_len = xs.len();
        let h = self.fwd.h;
        let n_tags = self.w_out.rows();
        let mut gout = Mat::zeros(n_tags, 2 * h);
        let mut gbout = vec![0.0; n_tags];
        let mut dh_f: Vec<Vec<f64>> = vec![vec![0.0; h]; t_len];
        let mut dh_b: Vec<Vec<f64>> = vec![vec![0.0; h]; t_len];
        let mut concat = vec![0.0; 2 * h];
        for t in 0..t_len {
            concat[..h].copy_from_slice(&fcache.hs[t]);
            concat[h..].copy_from_slice(&bcache.hs[t_len - 1 - t]);
            for k in 0..n_tags {
                let dl = d_emis[(t, k)];
                if dl == 0.0 {
                    continue;
                }
                vecops::axpy(dl, &concat, gout.row_mut(k));
                gbout[k] += dl;
                let wrow = self.w_out.row(k);
                vecops::axpy(dl, &wrow[..h], &mut dh_f[t]);
                vecops::axpy(dl, &wrow[h..], &mut dh_b[t_len - 1 - t]);
            }
        }
        let (gwf, gbf) = self.fwd.backward(xs, fcache, &dh_f);
        let rev: Vec<Vec<f64>> = xs.iter().rev().cloned().collect();
        let (gwb, gbb) = self.bwd.backward(&rev, bcache, &dh_b);
        CoreGrads {
            wf: gwf,
            bf: gbf,
            wb: gwb,
            bb: gbb,
            wout: gout,
            bout: gbout,
        }
    }
}

/// Optimizer bundle for the core (one Adam per parameter block).
struct CoreOpt {
    wf: Adam,
    bf: Adam,
    wb: Adam,
    bb: Adam,
    wout: Adam,
    bout: Adam,
}

impl CoreOpt {
    fn new(core: &BiLstmCore, lr: f64) -> Self {
        CoreOpt {
            wf: Adam::new(core.fwd.w.as_slice().len(), lr),
            bf: Adam::new(core.fwd.b.len(), lr),
            wb: Adam::new(core.bwd.w.as_slice().len(), lr),
            bb: Adam::new(core.bwd.b.len(), lr),
            wout: Adam::new(core.w_out.as_slice().len(), lr),
            bout: Adam::new(core.b_out.len(), lr),
        }
    }

    fn step(&mut self, core: &mut BiLstmCore, mut grads: CoreGrads, clip: f64) {
        clip_global_norm(grads.wf.as_mut_slice(), clip);
        clip_global_norm(&mut grads.bf, clip);
        clip_global_norm(grads.wb.as_mut_slice(), clip);
        clip_global_norm(&mut grads.bb, clip);
        clip_global_norm(grads.wout.as_mut_slice(), clip);
        clip_global_norm(&mut grads.bout, clip);
        self.wf.step(core.fwd.w.as_mut_slice(), grads.wf.as_slice());
        self.bf.step(&mut core.fwd.b, &grads.bf);
        self.wb.step(core.bwd.w.as_mut_slice(), grads.wb.as_slice());
        self.bb.step(&mut core.bwd.b, &grads.bb);
        self.wout
            .step(core.w_out.as_mut_slice(), grads.wout.as_slice());
        self.bout.step(&mut core.b_out, &grads.bout);
    }
}

/// Looks up token vectors, optionally applying word dropout.
fn embed_tokens(
    emb: &Embedding,
    tokens: &[u32],
    dropout: f64,
    rng: Option<&mut rand::rngs::StdRng>,
) -> Vec<Vec<f64>> {
    let mut rng = rng;
    tokens
        .iter()
        .map(|&t| {
            if let Some(r) = rng.as_deref_mut() {
                if dropout > 0.0 && r.random::<f64>() < dropout {
                    return vec![0.0; emb.dim()];
                }
            }
            emb.vector(t).to_vec()
        })
        .collect()
}

/// Softmax cross-entropy over emissions; returns `(loss, d_emissions)`.
fn softmax_ce(emis: &Mat, tags: &[u8]) -> (f64, Mat) {
    let t_len = emis.rows();
    let k = emis.cols();
    let mut d = Mat::zeros(t_len, k);
    let mut loss = 0.0;
    let inv = 1.0 / t_len as f64;
    for t in 0..t_len {
        let mut probs: Vec<f64> = emis.row(t).to_vec();
        vecops::softmax_inplace(&mut probs);
        let gold = tags[t] as usize;
        loss -= probs[gold].max(1e-12).ln() * inv;
        for j in 0..k {
            d[(t, j)] = (probs[j] - if j == gold { 1.0 } else { 0.0 }) * inv;
        }
    }
    (loss, d)
}

/// The BiLSTM tagger used for the paper's NER experiments (no CRF layer,
/// as in the main study).
#[derive(Clone, Debug)]
pub struct BiLstmTagger {
    core: BiLstmCore,
}

impl BiLstmTagger {
    /// Trains the tagger on fixed embeddings.
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty or `config.hidden` is zero.
    pub fn train(emb: &Embedding, train: &[TaggedSentence], config: &LstmConfig) -> Self {
        Self::train_with_report(emb, train, config).0
    }

    /// Trains and returns per-epoch mean losses.
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty or `config.hidden` is zero.
    pub fn train_with_report(
        emb: &Embedding,
        train: &[TaggedSentence],
        config: &LstmConfig,
    ) -> (Self, Vec<f64>) {
        assert!(!train.is_empty(), "cannot train on an empty dataset");
        assert!(config.hidden > 0, "hidden size must be positive");
        let mut init_rng = rand::rngs::StdRng::seed_from_u64(config.init_seed);
        let mut core = BiLstmCore::new(emb.dim(), config.hidden, N_TAGS, &mut init_rng);
        let mut opt = CoreOpt::new(&core, config.lr);
        let mut sample_rng = rand::rngs::StdRng::seed_from_u64(config.sample_seed);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut losses = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            shuffle(&mut order, &mut sample_rng);
            let mut epoch_loss = 0.0;
            for &i in &order {
                let s = &train[i];
                if s.tokens.is_empty() {
                    continue;
                }
                let xs = embed_tokens(emb, &s.tokens, config.word_dropout, Some(&mut sample_rng));
                let (emis, fc, bc) = core.emissions(&xs);
                let (loss, d_emis) = softmax_ce(&emis, &s.tags);
                epoch_loss += loss;
                let grads = core.backward(&xs, &fc, &bc, &d_emis);
                opt.step(&mut core, grads, config.clip);
            }
            losses.push(epoch_loss / train.len() as f64);
        }
        (BiLstmTagger { core }, losses)
    }

    /// Predicted tags for one sentence.
    pub fn predict(&self, emb: &Embedding, tokens: &[u32]) -> Vec<u8> {
        if tokens.is_empty() {
            return Vec::new();
        }
        let xs = embed_tokens(emb, tokens, 0.0, None);
        let (emis, _, _) = self.core.emissions(&xs);
        argmax_tags(&emis)
    }

    /// Predicted tags for every sentence of a dataset split.
    pub fn predict_all(&self, emb: &Embedding, sentences: &[TaggedSentence]) -> Vec<Vec<u8>> {
        sentences
            .iter()
            .map(|s| self.predict(emb, &s.tokens))
            .collect()
    }
}

/// The BiLSTM-CRF tagger (paper Appendix E.2).
#[derive(Clone, Debug)]
pub struct BiLstmCrfTagger {
    core: BiLstmCore,
    crf: Crf,
}

impl BiLstmCrfTagger {
    /// Trains the tagger (CRF negative log-likelihood objective).
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty or `config.hidden` is zero.
    pub fn train(emb: &Embedding, train: &[TaggedSentence], config: &LstmConfig) -> Self {
        assert!(!train.is_empty(), "cannot train on an empty dataset");
        assert!(config.hidden > 0, "hidden size must be positive");
        let mut init_rng = rand::rngs::StdRng::seed_from_u64(config.init_seed);
        let mut core = BiLstmCore::new(emb.dim(), config.hidden, N_TAGS, &mut init_rng);
        let mut crf = Crf::new(N_TAGS);
        let mut opt = CoreOpt::new(&core, config.lr);
        let mut crf_trans_opt = Adam::new(N_TAGS * N_TAGS, config.lr);
        let mut crf_start_opt = Adam::new(N_TAGS, config.lr);
        let mut crf_end_opt = Adam::new(N_TAGS, config.lr);
        let mut sample_rng = rand::rngs::StdRng::seed_from_u64(config.sample_seed);
        let mut order: Vec<usize> = (0..train.len()).collect();
        for _ in 0..config.epochs {
            shuffle(&mut order, &mut sample_rng);
            for &i in &order {
                let s = &train[i];
                if s.tokens.is_empty() {
                    continue;
                }
                let xs = embed_tokens(emb, &s.tokens, config.word_dropout, Some(&mut sample_rng));
                let (emis, fc, bc) = core.emissions(&xs);
                let inv = 1.0 / s.tokens.len() as f64;
                let (_nll, mut cgrads, d_emis) = crf.nll_and_grads(&emis, &s.tags);
                let d_emis = d_emis.scale(inv);
                let grads = core.backward(&xs, &fc, &bc, &d_emis);
                opt.step(&mut core, grads, config.clip);
                let mut gt = cgrads.trans.scale(inv);
                clip_global_norm(gt.as_mut_slice(), config.clip);
                crf_trans_opt.step(crf.trans.as_mut_slice(), gt.as_slice());
                for g in cgrads.start.iter_mut() {
                    *g *= inv;
                }
                for g in cgrads.end.iter_mut() {
                    *g *= inv;
                }
                crf_start_opt.step(&mut crf.start, &cgrads.start);
                crf_end_opt.step(&mut crf.end, &cgrads.end);
            }
        }
        BiLstmCrfTagger { core, crf }
    }

    /// Predicted tags for one sentence (Viterbi decoding).
    pub fn predict(&self, emb: &Embedding, tokens: &[u32]) -> Vec<u8> {
        if tokens.is_empty() {
            return Vec::new();
        }
        let xs = embed_tokens(emb, tokens, 0.0, None);
        let (emis, _, _) = self.core.emissions(&xs);
        self.crf.viterbi(&emis)
    }

    /// Predicted tags for every sentence of a dataset split.
    pub fn predict_all(&self, emb: &Embedding, sentences: &[TaggedSentence]) -> Vec<Vec<u8>> {
        sentences
            .iter()
            .map(|s| self.predict(emb, &s.tokens))
            .collect()
    }
}

fn argmax_tags(emis: &Mat) -> Vec<u8> {
    (0..emis.rows())
        .map(|t| {
            let row = emis.row(t);
            let mut best = 0usize;
            for j in 1..row.len() {
                if row[j] > row[best] {
                    best = j;
                }
            }
            best as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::ner::NerSpec;
    use embedstab_corpus::{LatentModel, LatentModelConfig};

    fn setup() -> (LatentModel, crate::tasks::ner::NerDataset, Embedding) {
        let model = LatentModel::new(&LatentModelConfig {
            vocab_size: 300,
            n_topics: 10,
            ..Default::default()
        });
        let ds = NerSpec {
            n_train: 150,
            n_valid: 20,
            n_test: 80,
            ..Default::default()
        }
        .generate(&model);
        let emb = Embedding::new(model.word_vecs.clone());
        (model, ds, emb)
    }

    #[test]
    fn lstm_gradient_check() {
        // Finite differences through the full BiLSTM + softmax CE loss for
        // a handful of parameters in every block.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let core = BiLstmCore::new(3, 4, N_TAGS, &mut rng);
        let xs: Vec<Vec<f64>> = (0..5)
            .map(|_| Mat::random_normal(1, 3, &mut rng).into_vec())
            .collect();
        let tags = [0u8, 2, 1, 4, 0];
        let loss_of = |c: &BiLstmCore| -> f64 {
            let (emis, _, _) = c.emissions(&xs);
            softmax_ce(&emis, &tags).0
        };
        let (emis, fc, bc) = core.emissions(&xs);
        let (_, d_emis) = softmax_ce(&emis, &tags);
        let grads = core.backward(&xs, &fc, &bc, &d_emis);
        let eps = 1e-6;
        // Forward-direction weights: sample a grid of entries.
        let mut c2 = core.clone();
        for r in (0..16).step_by(3) {
            for col in (0..7).step_by(2) {
                let orig = c2.fwd.w[(r, col)];
                c2.fwd.w[(r, col)] = orig + eps;
                let up = loss_of(&c2);
                c2.fwd.w[(r, col)] = orig - eps;
                let down = loss_of(&c2);
                c2.fwd.w[(r, col)] = orig;
                let fd = (up - down) / (2.0 * eps);
                assert!(
                    (fd - grads.wf[(r, col)]).abs() < 1e-5,
                    "fwd w ({r},{col}): fd {fd} vs analytic {}",
                    grads.wf[(r, col)]
                );
            }
        }
        // Backward-direction bias and output weights.
        for j in 0..8 {
            let orig = c2.bwd.b[j];
            c2.bwd.b[j] = orig + eps;
            let up = loss_of(&c2);
            c2.bwd.b[j] = orig - eps;
            let down = loss_of(&c2);
            c2.bwd.b[j] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grads.bf.len().pow(0) as f64 * grads.bb[j]).abs() < 1e-5,
                "bwd b {j}: fd {fd} vs {}",
                grads.bb[j]
            );
        }
        for k in 0..N_TAGS {
            for col in 0..8 {
                let orig = c2.w_out[(k, col)];
                c2.w_out[(k, col)] = orig + eps;
                let up = loss_of(&c2);
                c2.w_out[(k, col)] = orig - eps;
                let down = loss_of(&c2);
                c2.w_out[(k, col)] = orig;
                let fd = (up - down) / (2.0 * eps);
                assert!(
                    (fd - grads.wout[(k, col)]).abs() < 1e-5,
                    "w_out ({k},{col}): fd {fd} vs {}",
                    grads.wout[(k, col)]
                );
            }
        }
    }

    #[test]
    fn learns_ner_from_good_embeddings() {
        let (_m, ds, emb) = setup();
        let (tagger, losses) = BiLstmTagger::train_with_report(
            &emb,
            &ds.train,
            &LstmConfig {
                epochs: 6,
                hidden: 12,
                ..Default::default()
            },
        );
        assert!(
            losses.last().expect("losses") < &losses[0],
            "loss should fall: {losses:?}"
        );
        // Entity-token accuracy well above the 1-in-5 chance level.
        let preds = tagger.predict_all(&emb, &ds.test);
        let mut correct = 0usize;
        let mut total = 0usize;
        for (p, s) in preds.iter().zip(&ds.test) {
            for (j, (&pt, &gt)) in p.iter().zip(&s.tags).enumerate() {
                let _ = j;
                if gt != 0 {
                    total += 1;
                    if pt == gt {
                        correct += 1;
                    }
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.5, "entity-token accuracy {acc}");
    }

    #[test]
    fn crf_tagger_trains_and_predicts() {
        let (_m, ds, emb) = setup();
        let small: Vec<TaggedSentence> = ds.train[..60].to_vec();
        let tagger = BiLstmCrfTagger::train(
            &emb,
            &small,
            &LstmConfig {
                epochs: 3,
                hidden: 8,
                ..Default::default()
            },
        );
        let preds = tagger.predict_all(&emb, &ds.test[..20]);
        for (p, s) in preds.iter().zip(&ds.test[..20]) {
            assert_eq!(p.len(), s.tokens.len());
            assert!(p.iter().all(|&t| (t as usize) < N_TAGS));
        }
    }

    #[test]
    fn deterministic_given_seeds() {
        let (_m, ds, emb) = setup();
        let cfg = LstmConfig {
            epochs: 2,
            hidden: 8,
            ..Default::default()
        };
        let a = BiLstmTagger::train(&emb, &ds.train[..40], &cfg);
        let b = BiLstmTagger::train(&emb, &ds.train[..40], &cfg);
        assert_eq!(
            a.predict_all(&emb, &ds.test[..10]),
            b.predict_all(&emb, &ds.test[..10])
        );
    }

    #[test]
    fn empty_sentence_predicts_empty() {
        let (_m, ds, emb) = setup();
        let tagger = BiLstmTagger::train(
            &emb,
            &ds.train[..20],
            &LstmConfig {
                epochs: 1,
                hidden: 4,
                ..Default::default()
            },
        );
        assert!(tagger.predict(&emb, &[]).is_empty());
    }
}
