//! A CNN sentence classifier (Kim, 2014), the paper's "more complex
//! downstream model" robustness check for sentiment (Appendix E.2).
//!
//! Architecture: parallel 1-D convolutions over the word-vector sequence
//! (one filter bank per width), ReLU, max-over-time pooling, dropout, and a
//! linear classifier — trained with Adam and from-scratch backprop.

use embedstab_embeddings::Embedding;
use embedstab_linalg::{vecops, Mat};
use rand::{RngExt, SeedableRng};

use crate::models::logreg::TrainSpec;
use crate::nn::{shuffle, Adam};
use crate::tasks::sentiment::SentimentExample;

/// CNN architecture hyperparameters (paper Table 12b uses widths 3/4/5,
/// 100 channels, dropout 0.5; channels are scaled down here).
#[derive(Clone, Debug)]
pub struct CnnConfig {
    /// Convolution widths.
    pub widths: Vec<usize>,
    /// Output channels per width.
    pub channels: usize,
    /// Dropout probability on the pooled feature vector.
    pub dropout: f64,
}

impl Default for CnnConfig {
    fn default() -> Self {
        CnnConfig {
            widths: vec![2, 3, 4],
            channels: 12,
            dropout: 0.5,
        }
    }
}

/// A trained CNN sentiment classifier over fixed embeddings.
#[derive(Clone, Debug)]
pub struct CnnSentimentModel {
    widths: Vec<usize>,
    channels: usize,
    dim: usize,
    /// One filter bank per width: `channels x (width * dim)`.
    filters: Vec<Mat>,
    /// One bias vector per width.
    fbias: Vec<Vec<f64>>,
    w_out: Vec<f64>,
    b_out: f64,
}

struct Forward {
    /// Pooled (post-ReLU) features, length `widths * channels`.
    features: Vec<f64>,
    /// Argmax position per feature unit; `None` when the unit is dead
    /// (all activations non-positive).
    argmax: Vec<Option<usize>>,
}

impl CnnSentimentModel {
    /// Trains the model.
    ///
    /// # Panics
    ///
    /// Panics if the config has no widths, a zero width/channel count, or
    /// the training set is empty.
    pub fn train(
        emb: &Embedding,
        train: &[SentimentExample],
        config: &CnnConfig,
        spec: &TrainSpec,
    ) -> Self {
        assert!(!config.widths.is_empty(), "need at least one width");
        assert!(config.channels > 0, "channels must be positive");
        assert!(
            config.widths.iter().all(|&w| w > 0),
            "widths must be positive"
        );
        assert!(!train.is_empty(), "cannot train on an empty dataset");
        let dim = emb.dim();
        let mut init_rng = rand::rngs::StdRng::seed_from_u64(spec.init_seed);
        let mut model = CnnSentimentModel {
            widths: config.widths.clone(),
            channels: config.channels,
            dim,
            filters: config
                .widths
                .iter()
                .map(|&w| {
                    let fan_in = (w * dim) as f64;
                    Mat::random_normal(config.channels, w * dim, &mut init_rng)
                        .scale(1.0 / fan_in.sqrt())
                })
                .collect(),
            fbias: config
                .widths
                .iter()
                .map(|_| vec![0.0; config.channels])
                .collect(),
            w_out: Mat::random_normal(1, config.widths.len() * config.channels, &mut init_rng)
                .scale(0.01)
                .into_vec(),
            b_out: 0.0,
        };

        let n_feat = model.w_out.len();
        let mut opts: Vec<Adam> = model
            .filters
            .iter()
            .map(|f| Adam::new(f.rows() * f.cols(), spec.lr))
            .collect();
        let mut bias_opts: Vec<Adam> = model
            .fbias
            .iter()
            .map(|b| Adam::new(b.len(), spec.lr))
            .collect();
        let mut out_opt = Adam::new(n_feat + 1, spec.lr);

        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut sample_rng = rand::rngs::StdRng::seed_from_u64(spec.sample_seed);
        for _ in 0..spec.epochs {
            shuffle(&mut order, &mut sample_rng);
            for chunk in order.chunks(spec.batch.max(1)) {
                let mut gfilters: Vec<Mat> = model
                    .filters
                    .iter()
                    .map(|f| Mat::zeros(f.rows(), f.cols()))
                    .collect();
                let mut gbias: Vec<Vec<f64>> =
                    model.fbias.iter().map(|b| vec![0.0; b.len()]).collect();
                let mut gout = vec![0.0; n_feat + 1];
                let inv = 1.0 / chunk.len() as f64;
                for &i in chunk {
                    let ex = &train[i];
                    let x = embed_sentence(emb, &ex.tokens, model.max_width());
                    let fwd = model.forward(&x);
                    // Inverted dropout on the pooled features.
                    let keep = 1.0 - config.dropout;
                    let mask: Vec<f64> = (0..n_feat)
                        .map(|_| {
                            if config.dropout > 0.0 && sample_rng.random::<f64>() < config.dropout {
                                0.0
                            } else {
                                1.0 / keep
                            }
                        })
                        .collect();
                    let dropped: Vec<f64> =
                        fwd.features.iter().zip(&mask).map(|(f, m)| f * m).collect();
                    let z = vecops::dot(&model.w_out, &dropped) + model.b_out;
                    let p = vecops::sigmoid(z);
                    let dz = (p - if ex.label { 1.0 } else { 0.0 }) * inv;
                    // Output layer gradients.
                    for j in 0..n_feat {
                        gout[j] += dz * dropped[j];
                    }
                    gout[n_feat] += dz;
                    // Back through dropout, pooling, ReLU, convolution.
                    for (unit, am) in fwd.argmax.iter().enumerate() {
                        let Some(pos) = am else { continue };
                        let df = dz * model.w_out[unit] * mask[unit];
                        if df == 0.0 {
                            continue;
                        }
                        let wi = unit / model.channels;
                        let c = unit % model.channels;
                        let w = model.widths[wi];
                        let window = &x.as_slice()[pos * dim..(pos + w) * dim];
                        vecops::axpy(df, window, gfilters[wi].row_mut(c));
                        gbias[wi][c] += df;
                    }
                }
                for (f, (g, opt)) in model
                    .filters
                    .iter_mut()
                    .zip(gfilters.iter().zip(opts.iter_mut()))
                {
                    opt.step(f.as_mut_slice(), g.as_slice());
                }
                for (b, (g, opt)) in model
                    .fbias
                    .iter_mut()
                    .zip(gbias.iter().zip(bias_opts.iter_mut()))
                {
                    opt.step(b, g);
                }
                let mut out_params: Vec<f64> = model.w_out.clone();
                out_params.push(model.b_out);
                out_opt.step(&mut out_params, &gout);
                model.b_out = out_params.pop().expect("bias present");
                model.w_out = out_params;
            }
        }
        model
    }

    fn max_width(&self) -> usize {
        self.widths.iter().copied().max().unwrap_or(1)
    }

    /// Forward pass over an embedded sentence (rows = positions).
    fn forward(&self, x: &Mat) -> Forward {
        let len = x.rows();
        let dim = self.dim;
        let mut features = Vec::with_capacity(self.widths.len() * self.channels);
        let mut argmax = Vec::with_capacity(features.capacity());
        for (wi, &w) in self.widths.iter().enumerate() {
            let positions = len.saturating_sub(w) + 1;
            for c in 0..self.channels {
                let filter = self.filters[wi].row(c);
                let mut best = 0.0f64;
                let mut best_pos = None;
                for p in 0..positions {
                    let window = &x.as_slice()[p * dim..(p + w) * dim];
                    let act = vecops::dot(filter, window) + self.fbias[wi][c];
                    let relu = act.max(0.0);
                    if relu > best {
                        best = relu;
                        best_pos = Some(p);
                    }
                }
                features.push(best);
                argmax.push(best_pos);
            }
        }
        Forward { features, argmax }
    }

    /// Predicted labels for a set of examples.
    pub fn predict(&self, emb: &Embedding, examples: &[SentimentExample]) -> Vec<bool> {
        examples
            .iter()
            .map(|ex| {
                let x = embed_sentence(emb, &ex.tokens, self.max_width());
                let fwd = self.forward(&x);
                vecops::dot(&self.w_out, &fwd.features) + self.b_out > 0.0
            })
            .collect()
    }

    /// Classification accuracy.
    pub fn accuracy(&self, emb: &Embedding, examples: &[SentimentExample]) -> f64 {
        let preds = self.predict(emb, examples);
        let correct = preds
            .iter()
            .zip(examples)
            .filter(|(p, e)| **p == e.label)
            .count();
        correct as f64 / examples.len().max(1) as f64
    }
}

/// Embeds a token sequence as a `len x dim` matrix, zero-padding to at
/// least `min_len` rows so every convolution width fits.
fn embed_sentence(emb: &Embedding, tokens: &[u32], min_len: usize) -> Mat {
    let len = tokens.len().max(min_len).max(1);
    let mut x = Mat::zeros(len, emb.dim());
    for (i, &t) in tokens.iter().enumerate() {
        x.row_mut(i).copy_from_slice(emb.vector(t));
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::sentiment::SentimentSpec;
    use embedstab_corpus::{LatentModel, LatentModelConfig};

    #[test]
    fn learns_sentiment() {
        let model = LatentModel::new(&LatentModelConfig {
            vocab_size: 200,
            n_topics: 6,
            ..Default::default()
        });
        let ds = SentimentSpec {
            n_train: 300,
            n_valid: 20,
            n_test: 150,
            ..SentimentSpec::sst2()
        }
        .generate(&model);
        let emb = Embedding::new(model.word_vecs.clone());
        let cnn = CnnSentimentModel::train(
            &emb,
            &ds.train,
            &CnnConfig {
                widths: vec![2, 3],
                channels: 8,
                dropout: 0.3,
            },
            &TrainSpec {
                lr: 5e-3,
                epochs: 12,
                ..Default::default()
            },
        );
        let acc = cnn.accuracy(&emb, &ds.test);
        assert!(acc > 0.7, "CNN accuracy {acc}");
    }

    #[test]
    fn handles_sentences_shorter_than_widths() {
        let emb = Embedding::new(Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let train = vec![
            SentimentExample {
                tokens: vec![0],
                label: true,
            },
            SentimentExample {
                tokens: vec![1],
                label: false,
            },
        ];
        let cnn = CnnSentimentModel::train(
            &emb,
            &train,
            &CnnConfig {
                widths: vec![3],
                channels: 4,
                dropout: 0.0,
            },
            &TrainSpec {
                epochs: 2,
                ..Default::default()
            },
        );
        let preds = cnn.predict(&emb, &train);
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn deterministic_given_seeds() {
        let model = LatentModel::new(&LatentModelConfig {
            vocab_size: 100,
            n_topics: 6,
            ..Default::default()
        });
        let ds = SentimentSpec {
            n_train: 60,
            n_valid: 5,
            n_test: 30,
            ..SentimentSpec::sst2()
        }
        .generate(&model);
        let emb = Embedding::new(model.word_vecs.clone());
        let cfg = CnnConfig {
            widths: vec![2],
            channels: 4,
            dropout: 0.2,
        };
        let spec = TrainSpec {
            epochs: 3,
            ..Default::default()
        };
        let a = CnnSentimentModel::train(&emb, &ds.train, &cfg, &spec);
        let b = CnnSentimentModel::train(&emb, &ds.train, &cfg, &spec);
        assert_eq!(a.predict(&emb, &ds.test), b.predict(&emb, &ds.test));
    }

    #[test]
    fn gradient_check_conv_filters() {
        // Finite-difference check of the (dropout-free) loss w.r.t. a few
        // filter entries.
        let emb = Embedding::new(Mat::from_rows(&[
            &[0.5, -0.2, 0.1],
            &[-0.3, 0.8, 0.4],
            &[0.2, 0.1, -0.6],
        ]));
        let ex = SentimentExample {
            tokens: vec![0, 1, 2, 1],
            label: true,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut model = CnnSentimentModel {
            widths: vec![2],
            channels: 3,
            dim: 3,
            filters: vec![Mat::random_normal(3, 6, &mut rng).scale(0.5)],
            fbias: vec![vec![0.05, -0.02, 0.01]],
            w_out: vec![0.3, -0.4, 0.2],
            b_out: 0.1,
        };
        let loss = |m: &CnnSentimentModel| -> f64 {
            let x = embed_sentence(&emb, &ex.tokens, 2);
            let fwd = m.forward(&x);
            let z = vecops::dot(&m.w_out, &fwd.features) + m.b_out;
            // BCE with label 1.
            z.max(0.0) - z + (1.0 + (-z.abs()).exp()).ln()
        };
        // Analytic gradient of one filter entry via the backward formulas.
        let x = embed_sentence(&emb, &ex.tokens, 2);
        let fwd = model.forward(&x);
        let z = vecops::dot(&model.w_out, &fwd.features) + model.b_out;
        let p = vecops::sigmoid(z);
        let dz = p - 1.0;
        let mut gfilter = Mat::zeros(3, 6);
        for (unit, am) in fwd.argmax.iter().enumerate() {
            let Some(pos) = am else { continue };
            let df = dz * model.w_out[unit];
            let window = &x.as_slice()[pos * 3..(pos + 2) * 3];
            vecops::axpy(df, window, gfilter.row_mut(unit));
        }
        let eps = 1e-6;
        for c in 0..3 {
            for j in 0..6 {
                let orig = model.filters[0][(c, j)];
                model.filters[0][(c, j)] = orig + eps;
                let up = loss(&model);
                model.filters[0][(c, j)] = orig - eps;
                let down = loss(&model);
                model.filters[0][(c, j)] = orig;
                let fd = (up - down) / (2.0 * eps);
                assert!(
                    (fd - gfilter[(c, j)]).abs() < 1e-5,
                    "filter ({c},{j}): fd {fd} vs analytic {}",
                    gfilter[(c, j)]
                );
            }
        }
    }
}
