//! A linear-chain conditional random field decoding layer, used by the
//! BiLSTM-CRF robustness experiment (paper Appendix E.2).

use embedstab_linalg::{vecops, Mat};

/// A linear-chain CRF over `n_tags` classes: learned transition scores
/// plus start/end potentials, trained by exact negative log-likelihood via
/// the forward-backward algorithm and decoded with Viterbi.
#[derive(Clone, Debug)]
pub struct Crf {
    n_tags: usize,
    /// `trans[(i, j)]` scores the transition from tag `i` to tag `j`.
    pub(crate) trans: Mat,
    pub(crate) start: Vec<f64>,
    pub(crate) end: Vec<f64>,
}

/// Gradients of the CRF's own parameters for one sequence.
#[derive(Clone, Debug)]
pub struct CrfGrads {
    /// Gradient of the transition matrix.
    pub trans: Mat,
    /// Gradient of the start potentials.
    pub start: Vec<f64>,
    /// Gradient of the end potentials.
    pub end: Vec<f64>,
}

impl Crf {
    /// Creates a CRF with zero-initialized potentials.
    ///
    /// # Panics
    ///
    /// Panics if `n_tags` is zero.
    pub fn new(n_tags: usize) -> Self {
        assert!(n_tags > 0, "need at least one tag");
        Crf {
            n_tags,
            trans: Mat::zeros(n_tags, n_tags),
            start: vec![0.0; n_tags],
            end: vec![0.0; n_tags],
        }
    }

    /// Number of tag classes.
    pub fn n_tags(&self) -> usize {
        self.n_tags
    }

    /// Negative log-likelihood of `tags` under `emissions` (`T x n_tags`),
    /// together with the gradients w.r.t. the CRF parameters and the
    /// emissions.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or shapes/tags are inconsistent.
    pub fn nll_and_grads(&self, emissions: &Mat, tags: &[u8]) -> (f64, CrfGrads, Mat) {
        let t_len = emissions.rows();
        let k = self.n_tags;
        assert!(t_len > 0, "empty sequence");
        assert_eq!(emissions.cols(), k, "emission width must equal tag count");
        assert_eq!(tags.len(), t_len, "tag sequence length mismatch");
        assert!(tags.iter().all(|&t| (t as usize) < k), "tag out of range");

        // Forward recursion (log space).
        let mut alpha = Mat::zeros(t_len, k);
        for j in 0..k {
            alpha[(0, j)] = self.start[j] + emissions[(0, j)];
        }
        let mut scratch = vec![0.0; k];
        for t in 1..t_len {
            for j in 0..k {
                for i in 0..k {
                    scratch[i] = alpha[(t - 1, i)] + self.trans[(i, j)];
                }
                alpha[(t, j)] = vecops::logsumexp(&scratch) + emissions[(t, j)];
            }
        }
        for j in 0..k {
            scratch[j] = alpha[(t_len - 1, j)] + self.end[j];
        }
        let log_z = vecops::logsumexp(&scratch);

        // Backward recursion.
        let mut beta = Mat::zeros(t_len, k);
        for j in 0..k {
            beta[(t_len - 1, j)] = self.end[j];
        }
        for t in (0..t_len - 1).rev() {
            for i in 0..k {
                for j in 0..k {
                    scratch[j] = self.trans[(i, j)] + emissions[(t + 1, j)] + beta[(t + 1, j)];
                }
                beta[(t, i)] = vecops::logsumexp(&scratch);
            }
        }

        // Gold score.
        let mut gold = self.start[tags[0] as usize] + emissions[(0, tags[0] as usize)];
        for t in 1..t_len {
            gold += self.trans[(tags[t - 1] as usize, tags[t] as usize)]
                + emissions[(t, tags[t] as usize)];
        }
        gold += self.end[tags[t_len - 1] as usize];
        let nll = log_z - gold;

        // Gradients from marginals.
        let mut d_emis = Mat::zeros(t_len, k);
        for t in 0..t_len {
            for j in 0..k {
                let marg = (alpha[(t, j)] + beta[(t, j)] - log_z).exp();
                d_emis[(t, j)] = marg - if tags[t] as usize == j { 1.0 } else { 0.0 };
            }
        }
        let mut d_trans = Mat::zeros(k, k);
        for t in 0..t_len - 1 {
            for i in 0..k {
                for j in 0..k {
                    let p = (alpha[(t, i)]
                        + self.trans[(i, j)]
                        + emissions[(t + 1, j)]
                        + beta[(t + 1, j)]
                        - log_z)
                        .exp();
                    d_trans[(i, j)] += p;
                }
            }
            d_trans[(tags[t] as usize, tags[t + 1] as usize)] -= 1.0;
        }
        let mut d_start = vec![0.0; k];
        let mut d_end = vec![0.0; k];
        for j in 0..k {
            d_start[j] = (alpha[(0, j)] + beta[(0, j)] - log_z).exp()
                - if tags[0] as usize == j { 1.0 } else { 0.0 };
            d_end[j] = (alpha[(t_len - 1, j)] + self.end[j] - log_z).exp()
                - if tags[t_len - 1] as usize == j {
                    1.0
                } else {
                    0.0
                };
        }
        (
            nll,
            CrfGrads {
                trans: d_trans,
                start: d_start,
                end: d_end,
            },
            d_emis,
        )
    }

    /// Viterbi decoding: the highest-scoring tag sequence for `emissions`.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or widths disagree.
    pub fn viterbi(&self, emissions: &Mat) -> Vec<u8> {
        let t_len = emissions.rows();
        let k = self.n_tags;
        assert!(t_len > 0, "empty sequence");
        assert_eq!(emissions.cols(), k, "emission width must equal tag count");
        let mut score = vec![0.0f64; k];
        for j in 0..k {
            score[j] = self.start[j] + emissions[(0, j)];
        }
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(t_len.saturating_sub(1));
        for t in 1..t_len {
            let mut next = vec![f64::NEG_INFINITY; k];
            let mut ptr = vec![0usize; k];
            for j in 0..k {
                for i in 0..k {
                    let s = score[i] + self.trans[(i, j)];
                    if s > next[j] {
                        next[j] = s;
                        ptr[j] = i;
                    }
                }
                next[j] += emissions[(t, j)];
            }
            score = next;
            back.push(ptr);
        }
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for j in 0..k {
            let s = score[j] + self.end[j];
            if s > best_score {
                best_score = s;
                best = j;
            }
        }
        let mut tags = vec![best as u8; t_len];
        for t in (1..t_len).rev() {
            best = back[t - 1][best];
            tags[t - 1] = best as u8;
        }
        tags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn random_crf(k: usize, seed: u64) -> Crf {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut crf = Crf::new(k);
        crf.trans = Mat::random_normal(k, k, &mut rng).scale(0.5);
        crf.start = Mat::random_normal(1, k, &mut rng).into_vec();
        crf.end = Mat::random_normal(1, k, &mut rng).into_vec();
        crf
    }

    #[test]
    fn nll_is_nonnegative_and_zero_only_in_limit() {
        let crf = random_crf(3, 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let emis = Mat::random_normal(5, 3, &mut rng);
        let (nll, _, _) = crf.nll_and_grads(&emis, &[0, 1, 2, 1, 0]);
        assert!(nll > 0.0, "finite potentials leave probability elsewhere");
    }

    #[test]
    fn gradient_check_emissions_and_transitions() {
        let crf = random_crf(3, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let emis = Mat::random_normal(4, 3, &mut rng);
        let tags = [2u8, 0, 1, 1];
        let (_, grads, d_emis) = crf.nll_and_grads(&emis, &tags);
        let eps = 1e-6;
        // Emissions.
        for t in 0..4 {
            for j in 0..3 {
                let mut up = emis.clone();
                up[(t, j)] += eps;
                let mut down = emis.clone();
                down[(t, j)] -= eps;
                let fd = (crf.nll_and_grads(&up, &tags).0 - crf.nll_and_grads(&down, &tags).0)
                    / (2.0 * eps);
                assert!(
                    (fd - d_emis[(t, j)]).abs() < 1e-5,
                    "emission ({t},{j}): fd {fd} vs {}",
                    d_emis[(t, j)]
                );
            }
        }
        // Transitions.
        for i in 0..3 {
            for j in 0..3 {
                let mut c2 = crf.clone();
                c2.trans[(i, j)] += eps;
                let up = c2.nll_and_grads(&emis, &tags).0;
                c2.trans[(i, j)] -= 2.0 * eps;
                let down = c2.nll_and_grads(&emis, &tags).0;
                let fd = (up - down) / (2.0 * eps);
                assert!(
                    (fd - grads.trans[(i, j)]).abs() < 1e-5,
                    "trans ({i},{j}): fd {fd} vs {}",
                    grads.trans[(i, j)]
                );
            }
        }
        // Start / end.
        for j in 0..3 {
            let mut c2 = crf.clone();
            c2.start[j] += eps;
            let up = c2.nll_and_grads(&emis, &tags).0;
            c2.start[j] -= 2.0 * eps;
            let down = c2.nll_and_grads(&emis, &tags).0;
            let fd = (up - down) / (2.0 * eps);
            assert!((fd - grads.start[j]).abs() < 1e-5, "start {j}");
        }
    }

    #[test]
    fn viterbi_matches_brute_force() {
        let crf = random_crf(3, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let emis = Mat::random_normal(4, 3, &mut rng);
        let vit = crf.viterbi(&emis);
        // Brute-force best sequence.
        let mut best_seq = vec![0u8; 4];
        let mut best = f64::NEG_INFINITY;
        for a in 0..3u8 {
            for b in 0..3u8 {
                for c in 0..3u8 {
                    for d in 0..3u8 {
                        let seq = [a, b, c, d];
                        let mut s = crf.start[a as usize] + emis[(0, a as usize)];
                        for t in 1..4 {
                            s += crf.trans[(seq[t - 1] as usize, seq[t] as usize)]
                                + emis[(t, seq[t] as usize)];
                        }
                        s += crf.end[d as usize];
                        if s > best {
                            best = s;
                            best_seq = seq.to_vec();
                        }
                    }
                }
            }
        }
        assert_eq!(vit, best_seq);
    }

    #[test]
    fn viterbi_single_token() {
        let crf = random_crf(4, 7);
        let emis = Mat::from_rows(&[&[0.0, 5.0, 1.0, -2.0]]);
        let tags = crf.viterbi(&emis);
        assert_eq!(tags.len(), 1);
        // Best tag maximizes start + emission + end.
        let expected = (0..4)
            .max_by(|&i, &j| {
                let si = crf.start[i] + emis[(0, i)] + crf.end[i];
                let sj = crf.start[j] + emis[(0, j)] + crf.end[j];
                si.total_cmp(&sj)
            })
            .expect("non-empty") as u8;
        assert_eq!(tags[0], expected);
    }
}
