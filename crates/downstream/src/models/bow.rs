//! The linear bag-of-words sentiment model (paper Appendix C.3.1), with the
//! optional embedding fine-tuning mode of Appendix E.4.

use embedstab_embeddings::Embedding;
use embedstab_linalg::{vecops, Mat};
use rand::SeedableRng;

use crate::models::logreg::{LogReg, TrainSpec};
use crate::nn::{shuffle, Adam};
use crate::tasks::sentiment::SentimentExample;

/// Builds the averaged-embedding feature matrix for a set of examples.
///
/// Row `i` is the mean of the embedding vectors of the tokens of example
/// `i` (empty sentences yield a zero row).
pub fn bow_features(emb: &Embedding, examples: &[SentimentExample]) -> Mat {
    let d = emb.dim();
    let mut out = Mat::zeros(examples.len(), d);
    for (i, ex) in examples.iter().enumerate() {
        if ex.tokens.is_empty() {
            continue;
        }
        let row = out.row_mut(i);
        let inv = 1.0 / ex.tokens.len() as f64;
        for &t in &ex.tokens {
            vecops::axpy(inv, emb.vector(t), row);
        }
    }
    out
}

/// Options for [`BowSentimentModel::train`].
#[derive(Clone, Debug, Default)]
pub struct BowTrainOptions {
    /// If set, the embedding is copied and fine-tuned during training with
    /// SGD at the given learning rate (paper Appendix E.4); otherwise the
    /// embedding stays fixed, as in the main study.
    pub fine_tune_lr: Option<f64>,
}

/// The linear bag-of-words sentiment classifier.
///
/// When fine-tuning is disabled (the paper's main setting) this is a
/// logistic regression over [`bow_features`]. With fine-tuning the model
/// owns a trained copy of the embedding used at prediction time.
#[derive(Clone, Debug)]
pub struct BowSentimentModel {
    logreg: LogReg,
    tuned: Option<Embedding>,
}

impl BowSentimentModel {
    /// Trains the model on fixed embeddings.
    pub fn train(emb: &Embedding, train: &[SentimentExample], spec: &TrainSpec) -> Self {
        let features = bow_features(emb, train);
        let labels: Vec<bool> = train.iter().map(|e| e.label).collect();
        BowSentimentModel {
            logreg: LogReg::train(&features, &labels, spec),
            tuned: None,
        }
    }

    /// Trains with options (fixed or fine-tuned embeddings).
    pub fn train_with_options(
        emb: &Embedding,
        train: &[SentimentExample],
        spec: &TrainSpec,
        options: &BowTrainOptions,
    ) -> Self {
        match options.fine_tune_lr {
            None => Self::train(emb, train, spec),
            Some(emb_lr) => Self::train_fine_tuned(emb, train, spec, emb_lr),
        }
    }

    /// Joint training of the classifier and a copy of the embedding.
    fn train_fine_tuned(
        emb: &Embedding,
        train: &[SentimentExample],
        spec: &TrainSpec,
        emb_lr: f64,
    ) -> Self {
        let d = emb.dim();
        let mut tuned = emb.mat().clone();
        let mut init_rng = rand::rngs::StdRng::seed_from_u64(spec.init_seed);
        let mut params = Mat::random_normal(1, d + 1, &mut init_rng)
            .scale(0.01)
            .into_vec();
        let mut opt = Adam::new(d + 1, spec.lr);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut sample_rng = rand::rngs::StdRng::seed_from_u64(spec.sample_seed);
        let mut grads = vec![0.0; d + 1];
        let mut h = vec![0.0; d];
        for _ in 0..spec.epochs {
            shuffle(&mut order, &mut sample_rng);
            for chunk in order.chunks(spec.batch.max(1)) {
                grads.iter_mut().for_each(|g| *g = 0.0);
                let inv = 1.0 / chunk.len() as f64;
                for &i in chunk {
                    let ex = &train[i];
                    if ex.tokens.is_empty() {
                        continue;
                    }
                    h.iter_mut().for_each(|x| *x = 0.0);
                    let tok_inv = 1.0 / ex.tokens.len() as f64;
                    for &t in &ex.tokens {
                        vecops::axpy(tok_inv, tuned.row(t as usize), &mut h);
                    }
                    let (w, b) = params.split_at(d);
                    let z = vecops::dot(w, &h) + b[0];
                    let p = vecops::sigmoid(z);
                    let g = (p - if ex.label { 1.0 } else { 0.0 }) * inv;
                    vecops::axpy(g, &h, &mut grads[..d]);
                    grads[d] += g;
                    // SGD step on the embedding rows used by this example.
                    let row_g = g * tok_inv * emb_lr;
                    for &t in &ex.tokens {
                        vecops::axpy(-row_g, w, tuned.row_mut(t as usize));
                    }
                }
                if spec.l2 > 0.0 {
                    for j in 0..d {
                        grads[j] += spec.l2 * params[j];
                    }
                }
                opt.step(&mut params, &grads);
            }
        }
        // Rebuild a LogReg for prediction from the final parameters by
        // training a fresh one on the tuned features; simpler and exact:
        let tuned_emb = Embedding::new(tuned);
        let b = params[d];
        params.truncate(d);
        BowSentimentModel {
            logreg: LogReg::from_parts(params, b),
            tuned: Some(tuned_emb),
        }
    }

    /// Predicted labels for a set of examples.
    pub fn predict(&self, emb: &Embedding, examples: &[SentimentExample]) -> Vec<bool> {
        let emb = self.tuned.as_ref().unwrap_or(emb);
        let features = bow_features(emb, examples);
        self.logreg.predict_all(&features)
    }

    /// Classification accuracy on a set of examples.
    pub fn accuracy(&self, emb: &Embedding, examples: &[SentimentExample]) -> f64 {
        let preds = self.predict(emb, examples);
        let correct = preds
            .iter()
            .zip(examples)
            .filter(|(p, e)| **p == e.label)
            .count();
        correct as f64 / examples.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::sentiment::SentimentSpec;
    use embedstab_corpus::{LatentModel, LatentModelConfig};

    fn setup() -> (
        LatentModel,
        crate::tasks::sentiment::SentimentDataset,
        Embedding,
    ) {
        let model = LatentModel::new(&LatentModelConfig {
            vocab_size: 300,
            n_topics: 8,
            ..Default::default()
        });
        let spec = SentimentSpec {
            n_train: 400,
            n_valid: 50,
            n_test: 200,
            ..SentimentSpec::sst2()
        };
        let ds = spec.generate(&model);
        // Ground-truth latent vectors are the ideal embedding.
        let emb = Embedding::new(model.word_vecs.clone());
        (model, ds, emb)
    }

    #[test]
    fn learns_sentiment_from_good_embeddings() {
        let (_m, ds, emb) = setup();
        let model = BowSentimentModel::train(
            &emb,
            &ds.train,
            &TrainSpec {
                lr: 0.01,
                epochs: 60,
                ..Default::default()
            },
        );
        let acc = model.accuracy(&emb, &ds.test);
        assert!(acc > 0.72, "accuracy {acc}");
    }

    #[test]
    fn feature_rows_are_token_averages() {
        let emb = Embedding::new(Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]));
        let ex = vec![SentimentExample {
            tokens: vec![0, 1],
            label: true,
        }];
        let f = bow_features(&emb, &ex);
        assert_eq!(f.row(0), &[0.5, 0.5]);
    }

    #[test]
    fn fine_tuning_changes_embeddings_and_still_learns() {
        let (_m, ds, emb) = setup();
        let spec = TrainSpec {
            lr: 0.01,
            epochs: 30,
            ..Default::default()
        };
        let model = BowSentimentModel::train_with_options(
            &emb,
            &ds.train,
            &spec,
            &BowTrainOptions {
                fine_tune_lr: Some(0.05),
            },
        );
        let tuned = model.tuned.as_ref().expect("fine-tuned embedding stored");
        assert_ne!(
            tuned.mat(),
            emb.mat(),
            "fine-tuning must move the embedding"
        );
        let acc = model.accuracy(&emb, &ds.test);
        assert!(acc > 0.75, "fine-tuned accuracy {acc}");
    }

    #[test]
    fn empty_sentence_gets_zero_feature() {
        let emb = Embedding::new(Mat::from_rows(&[&[1.0, 1.0]]));
        let ex = vec![SentimentExample {
            tokens: vec![],
            label: false,
        }];
        let f = bow_features(&emb, &ex);
        assert_eq!(f.row(0), &[0.0, 0.0]);
    }
}
