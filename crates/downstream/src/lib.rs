//! Downstream NLP substrate: the tasks and models whose prediction
//! disagreement the paper measures.
//!
//! The paper trains, on top of *fixed* word embeddings:
//!
//! - a **linear bag-of-words** sentiment classifier on four datasets
//!   (SST-2, MR, Subj, MPQA) — here [`models::BowSentimentModel`] over the
//!   synthetic datasets of [`tasks::sentiment`];
//! - a **BiLSTM** named-entity tagger on CoNLL-2003 — here
//!   [`models::BiLstmTagger`] over [`tasks::ner`];
//! - robustness extensions: a **CNN** classifier (Appendix E.2,
//!   [`models::CnnSentimentModel`]), a **BiLSTM-CRF** (Appendix E.2,
//!   [`models::BiLstmCrfTagger`]), and **fine-tuned** embeddings
//!   (Appendix E.4, [`models::BowTrainOptions`]).
//!
//! All models are trained with from-scratch backpropagation (gradient
//! checked in the test suite) and are deterministic given their
//! initialization and sampling seeds — the two downstream randomness
//! sources the paper isolates in Appendix E.3.

pub mod eval;
pub mod models;
pub mod nn;
pub mod tasks;

pub use tasks::ner::{NerDataset, NerSpec, TaggedSentence, N_TAGS, TAG_NAMES};
pub use tasks::sentiment::{SentimentDataset, SentimentExample, SentimentSpec};
pub use tasks::{NerTask, PairSpec, SentimentTask, Task, TaskOutcome};
