//! Synthetic downstream task generators.
//!
//! Both task families are generated from the *base* ('17) latent model so
//! that, as in the paper, the downstream training data is held fixed while
//! the embeddings change underneath it.

pub mod ner;
pub mod sentiment;
pub mod task;

pub use task::{NerTask, PairSpec, SentimentTask, Task, TaskOutcome};
