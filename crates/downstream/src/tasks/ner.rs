//! Synthetic named-entity recognition standing in for CoNLL-2003 (paper
//! Section 3, Appendix C.3.2).
//!
//! Entity types (PER/ORG/LOC/MISC) are anchored to four latent topics:
//! the lexicon of type `t` is the set of words assigned to topic `t`.
//! Sentences are background text (from the remaining topics) with one to
//! three entity spans spliced in. A tagger can therefore identify entities
//! exactly to the extent that embeddings separate the latent clusters —
//! the same mechanism that makes real NER depend on embedding quality.

use embedstab_corpus::{codec, LatentModel};
use rand::{Rng, RngExt, SeedableRng};

/// Number of tag classes (`O` plus four entity types).
pub const N_TAGS: usize = 5;

/// Tag names, indexed by tag id.
pub const TAG_NAMES: [&str; N_TAGS] = ["O", "PER", "ORG", "LOC", "MISC"];

/// A token sequence with per-token tags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaggedSentence {
    /// Word ids.
    pub tokens: Vec<u32>,
    /// Tag ids (`0 = O`, `1..=4` = entity types).
    pub tags: Vec<u8>,
}

impl TaggedSentence {
    /// Mask that is true at entity tokens — instability is measured only
    /// there (paper Section 3).
    pub fn entity_mask(&self) -> Vec<bool> {
        self.tags.iter().map(|&t| t != 0).collect()
    }
}

/// A generated NER dataset with train/validation/test splits.
#[derive(Clone, Debug)]
pub struct NerDataset {
    /// Training split.
    pub train: Vec<TaggedSentence>,
    /// Validation split.
    pub valid: Vec<TaggedSentence>,
    /// Test split.
    pub test: Vec<TaggedSentence>,
    /// The four topic ids used as entity lexicons (`PER, ORG, LOC, MISC`).
    pub entity_topics: [usize; 4],
}

impl NerDataset {
    /// Appends the dataset to `out` in the world-cache byte layout: the
    /// four entity-topic ids, then the train/valid/test splits, each a
    /// `u64`-counted list of sentences (`tokens` as a length-prefixed
    /// `u32` list, then one tag byte per token).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        for &t in &self.entity_topics {
            codec::put_u64(out, t as u64);
        }
        for split in [&self.train, &self.valid, &self.test] {
            codec::put_u64(out, split.len() as u64);
            for s in split {
                codec::put_u32_slice(out, &s.tokens);
                out.extend_from_slice(&s.tags);
            }
        }
    }

    /// Reads one [`NerDataset::encode_into`]-encoded dataset from the
    /// front of `r`, advancing it. Returns `None` on truncated or
    /// inconsistent input (tag/token length mismatches are impossible by
    /// construction; out-of-range tag ids are rejected).
    pub fn decode_from(r: &mut &[u8]) -> Option<NerDataset> {
        let mut entity_topics = [0usize; 4];
        for t in entity_topics.iter_mut() {
            *t = usize::try_from(codec::take_u64(r)?).ok()?;
        }
        let mut splits = Vec::with_capacity(3);
        for _ in 0..3 {
            // Each sentence costs at least its 8-byte token-count prefix.
            let n = codec::take_len(r, 8)?;
            let mut split = Vec::with_capacity(n);
            for _ in 0..n {
                let tokens = codec::take_u32_slice(r)?;
                if r.len() < tokens.len() {
                    return None;
                }
                let tags = r[..tokens.len()].to_vec();
                *r = &r[tokens.len()..];
                if tags.iter().any(|&t| (t as usize) >= N_TAGS) {
                    return None;
                }
                split.push(TaggedSentence { tokens, tags });
            }
            splits.push(split);
        }
        let test = splits.pop().expect("three splits");
        let valid = splits.pop().expect("three splits");
        let train = splits.pop().expect("three splits");
        Some(NerDataset {
            train,
            valid,
            test,
            entity_topics,
        })
    }
}

/// Generator parameters for the NER dataset.
#[derive(Clone, Debug)]
pub struct NerSpec {
    /// Split sizes.
    pub n_train: usize,
    /// Validation size.
    pub n_valid: usize,
    /// Test size.
    pub n_test: usize,
    /// Sentence length range before entity insertion (inclusive).
    pub len_range: (usize, usize),
    /// Maximum entity spans per sentence (at least 1 is always inserted).
    pub max_spans: usize,
    /// Maximum entity span length.
    pub max_span_len: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for NerSpec {
    fn default() -> Self {
        NerSpec {
            n_train: 600,
            n_valid: 150,
            n_test: 400,
            len_range: (8, 16),
            max_spans: 3,
            max_span_len: 3,
            seed: 201,
        }
    }
}

impl NerSpec {
    /// Generates the dataset from a latent model (deterministic given the
    /// spec).
    ///
    /// The first four topics become the entity lexicons; background tokens
    /// are sampled from the remaining topics.
    ///
    /// # Panics
    ///
    /// Panics if the model has fewer than 6 topics (4 entity + 2
    /// background) or a lexicon would be empty.
    pub fn generate(&self, model: &LatentModel) -> NerDataset {
        assert!(
            model.n_topics() >= 6,
            "need at least 6 topics for NER generation"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let entity_topics = [0usize, 1, 2, 3];
        // Lexicons: words assigned to each entity topic.
        let lexicons: Vec<Vec<u32>> = entity_topics
            .iter()
            .map(|&t| {
                let lex: Vec<u32> = (0..model.vocab_size() as u32)
                    .filter(|&w| model.word_topics[w as usize] == t)
                    .collect();
                assert!(!lex.is_empty(), "entity lexicon for topic {t} is empty");
                lex
            })
            .collect();
        let background_topics: Vec<usize> = (4..model.n_topics()).collect();

        let total = self.n_train + self.n_valid + self.n_test;
        let mut sentences = Vec::with_capacity(total);
        for _ in 0..total {
            sentences.push(self.sample_sentence(model, &lexicons, &background_topics, &mut rng));
        }
        let mut valid = sentences.split_off(self.n_train);
        let test = valid.split_off(self.n_valid);
        NerDataset {
            train: sentences,
            valid,
            test,
            entity_topics,
        }
    }

    fn sample_sentence(
        &self,
        model: &LatentModel,
        lexicons: &[Vec<u32>],
        background_topics: &[usize],
        rng: &mut impl Rng,
    ) -> TaggedSentence {
        let len = rng.random_range(self.len_range.0..=self.len_range.1);
        // Background text: a fixed pair of background topics per sentence.
        let t1 = background_topics[rng.random_range(0..background_topics.len())];
        let t2 = background_topics[rng.random_range(0..background_topics.len())];
        let mut tokens: Vec<u32> = (0..len)
            .map(|_| {
                let t = if rng.random::<f64>() < 0.5 { t1 } else { t2 };
                model.sample_word(t, rng)
            })
            .collect();
        let mut tags = vec![0u8; len];
        // Splice in entity spans.
        let n_spans = rng.random_range(1..=self.max_spans);
        for _ in 0..n_spans {
            let ty = rng.random_range(0..4usize);
            let span_len = rng.random_range(1..=self.max_span_len).min(tokens.len());
            let start = rng.random_range(0..=(tokens.len() - span_len));
            // Skip if it would overlap an existing entity.
            if tags[start..start + span_len].iter().any(|&t| t != 0) {
                continue;
            }
            for k in 0..span_len {
                let lex = &lexicons[ty];
                tokens[start + k] = lex[rng.random_range(0..lex.len())];
                tags[start + k] = (ty + 1) as u8;
            }
        }
        TaggedSentence { tokens, tags }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_corpus::{LatentModel, LatentModelConfig};

    fn model() -> LatentModel {
        LatentModel::new(&LatentModelConfig {
            vocab_size: 400,
            n_topics: 10,
            ..Default::default()
        })
    }

    #[test]
    fn splits_and_shapes() {
        let ds = NerSpec {
            n_train: 50,
            n_valid: 10,
            n_test: 20,
            ..Default::default()
        }
        .generate(&model());
        assert_eq!(ds.train.len(), 50);
        assert_eq!(ds.valid.len(), 10);
        assert_eq!(ds.test.len(), 20);
        for s in ds.train.iter().chain(&ds.valid).chain(&ds.test) {
            assert_eq!(s.tokens.len(), s.tags.len());
            assert!(s.tags.iter().all(|&t| (t as usize) < N_TAGS));
        }
    }

    #[test]
    fn every_sentence_has_an_entity() {
        let ds = NerSpec::default().generate(&model());
        for s in &ds.train {
            assert!(s.tags.iter().any(|&t| t != 0), "sentence without entity");
        }
    }

    #[test]
    fn entity_tokens_come_from_their_lexicon() {
        let m = model();
        let ds = NerSpec::default().generate(&m);
        for s in ds.train.iter().take(100) {
            for (tok, &tag) in s.tokens.iter().zip(&s.tags) {
                if tag != 0 {
                    let topic = m.word_topics[*tok as usize];
                    assert_eq!(
                        topic,
                        ds.entity_topics[(tag - 1) as usize],
                        "entity token from wrong topic"
                    );
                }
            }
        }
    }

    #[test]
    fn entity_mask_matches_tags() {
        let s = TaggedSentence {
            tokens: vec![1, 2, 3],
            tags: vec![0, 2, 0],
        };
        assert_eq!(s.entity_mask(), vec![false, true, false]);
    }

    #[test]
    fn codec_round_trips_every_split() {
        let ds = NerSpec {
            n_train: 30,
            n_valid: 8,
            n_test: 12,
            ..Default::default()
        }
        .generate(&model());
        let mut bytes = Vec::new();
        ds.encode_into(&mut bytes);
        let r = &mut bytes.as_slice();
        let back = NerDataset::decode_from(r).expect("decodes");
        assert!(r.is_empty());
        assert_eq!(back.entity_topics, ds.entity_topics);
        assert_eq!(back.train, ds.train);
        assert_eq!(back.valid, ds.valid);
        assert_eq!(back.test, ds.test);
        for cut in 0..bytes.len() {
            assert!(NerDataset::decode_from(&mut &bytes[..cut]).is_none());
        }
    }

    #[test]
    fn deterministic() {
        let m = model();
        let a = NerSpec::default().generate(&m);
        let b = NerSpec::default().generate(&m);
        assert_eq!(a.train, b.train);
    }
}
