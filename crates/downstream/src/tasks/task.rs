//! The pluggable downstream-task interface behind the experiment grid.
//!
//! The paper's protocol is the same for every downstream task: train one
//! model per embedding of a '17/'18 pair with matched seeds, predict on a
//! fixed test set, and record the prediction disagreement plus each side's
//! quality. [`Task`] captures exactly that step, so the grid runner in
//! `embedstab_pipeline` can sweep any task — sentiment, NER, or a future
//! KGE/contextual task — without knowing how its models are trained.

use std::sync::Arc;

use embedstab_core::{disagreement, masked_disagreement};
use embedstab_embeddings::Embedding;

use crate::eval::{entity_micro_f1, flatten_tags};
use crate::models::{BiLstmTagger, BowSentimentModel, BowTrainOptions, LstmConfig, TrainSpec};
use crate::tasks::ner::NerDataset;
use crate::tasks::sentiment::SentimentDataset;

/// The grid-varying knobs for one embedding-pair evaluation.
///
/// Task-specific hyperparameters (epochs, hidden sizes, datasets) live on
/// the task value itself; `PairSpec` carries only what changes from one
/// grid configuration to the next.
#[derive(Clone, Debug)]
pub struct PairSpec {
    /// Seed shared by embedding and downstream training.
    pub seed: u64,
    /// Downstream learning-rate override (Appendix E.5 sweeps this).
    pub lr_override: Option<f64>,
    /// Use different model-init/sampling seeds for the '18-side model
    /// (Appendix E.3's relaxed-seed setting).
    pub relax_seeds: bool,
    /// Fine-tune the embeddings during downstream training at the given
    /// learning rate (Appendix E.4); tasks without fine-tuning ignore it.
    pub fine_tune_lr: Option<f64>,
}

impl PairSpec {
    /// A fixed-seed spec with no overrides.
    pub fn new(seed: u64) -> Self {
        PairSpec {
            seed,
            lr_override: None,
            relax_seeds: false,
            fine_tune_lr: None,
        }
    }

    /// The '18-side seeds: identical to the '17 side unless relaxed.
    fn seeds18(&self) -> (u64, u64) {
        if self.relax_seeds {
            (self.seed.wrapping_add(1000), self.seed.wrapping_add(2000))
        } else {
            (self.seed, self.seed)
        }
    }
}

/// What one paired train/evaluate step produces.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskOutcome {
    /// Downstream prediction disagreement in `[0, 1]`.
    pub disagreement: f64,
    /// Quality of the '17-side model (accuracy / micro-F1).
    pub quality17: f64,
    /// Quality of the '18-side model.
    pub quality18: f64,
}

/// One downstream task: given an aligned (and possibly compressed)
/// embedding pair, train the paired models and measure disagreement.
///
/// Implementations must be deterministic in `(q17, q18, spec)` — the
/// sharding and caching layers of the pipeline rely on re-running a
/// configuration producing bitwise-identical outcomes.
pub trait Task: Send + Sync {
    /// Task name recorded on result rows (`sst2`, `ner`, ...).
    fn name(&self) -> &str;

    /// Trains the paired models on `q17`/`q18` and evaluates them.
    fn train_eval(&self, q17: &Embedding, q18: &Embedding, spec: &PairSpec) -> TaskOutcome;
}

/// Binary sentiment classification with the bag-of-words logistic model
/// (paper Section 3; SST-2, MR, Subj, MPQA).
pub struct SentimentTask {
    dataset: Arc<SentimentDataset>,
    /// Training epochs (the scale's `logreg_epochs`).
    pub epochs: usize,
    /// Learning rate when no override is given.
    pub base_lr: f64,
}

impl SentimentTask {
    /// Wraps a sentiment dataset as a grid task.
    pub fn new(dataset: Arc<SentimentDataset>, epochs: usize) -> Self {
        SentimentTask {
            dataset,
            epochs,
            base_lr: 0.01,
        }
    }
}

impl Task for SentimentTask {
    fn name(&self) -> &str {
        &self.dataset.name
    }

    fn train_eval(&self, q17: &Embedding, q18: &Embedding, spec: &PairSpec) -> TaskOutcome {
        let ds = &*self.dataset;
        let spec17 = TrainSpec {
            lr: spec.lr_override.unwrap_or(self.base_lr),
            epochs: self.epochs,
            init_seed: spec.seed,
            sample_seed: spec.seed,
            ..Default::default()
        };
        let (init18, sample18) = spec.seeds18();
        let spec18 = TrainSpec {
            init_seed: init18,
            sample_seed: sample18,
            ..spec17.clone()
        };
        let bow_opts = BowTrainOptions {
            fine_tune_lr: spec.fine_tune_lr,
        };
        let m17 = BowSentimentModel::train_with_options(q17, &ds.train, &spec17, &bow_opts);
        let m18 = BowSentimentModel::train_with_options(q18, &ds.train, &spec18, &bow_opts);
        let p17 = m17.predict(q17, &ds.test);
        let p18 = m18.predict(q18, &ds.test);
        TaskOutcome {
            disagreement: disagreement(&p17, &p18),
            quality17: m17.accuracy(q17, &ds.test),
            quality18: m18.accuracy(q18, &ds.test),
        }
    }
}

/// Named-entity recognition with the BiLSTM tagger; disagreement is
/// measured over entity tokens only (paper Section 3).
pub struct NerTask {
    dataset: Arc<NerDataset>,
    /// Hidden units per direction (the scale's `lstm_hidden`).
    pub hidden: usize,
    /// Training epochs (the scale's `lstm_epochs`).
    pub epochs: usize,
    /// Learning rate when no override is given.
    pub base_lr: f64,
}

impl NerTask {
    /// Wraps a NER dataset as a grid task.
    pub fn new(dataset: Arc<NerDataset>, hidden: usize, epochs: usize) -> Self {
        NerTask {
            dataset,
            hidden,
            epochs,
            base_lr: 0.01,
        }
    }
}

impl Task for NerTask {
    fn name(&self) -> &str {
        "ner"
    }

    fn train_eval(&self, q17: &Embedding, q18: &Embedding, spec: &PairSpec) -> TaskOutcome {
        let ds = &*self.dataset;
        let cfg17 = LstmConfig {
            hidden: self.hidden,
            epochs: self.epochs,
            lr: spec.lr_override.unwrap_or(self.base_lr),
            init_seed: spec.seed,
            sample_seed: spec.seed,
            ..Default::default()
        };
        let (init18, sample18) = spec.seeds18();
        let cfg18 = LstmConfig {
            init_seed: init18,
            sample_seed: sample18,
            ..cfg17.clone()
        };
        let m17 = BiLstmTagger::train(q17, &ds.train, &cfg17);
        let m18 = BiLstmTagger::train(q18, &ds.train, &cfg18);
        let p17 = m17.predict_all(q17, &ds.test);
        let p18 = m18.predict_all(q18, &ds.test);
        let (flat17, mask) = flatten_tags(&p17, &ds.test);
        let (flat18, _) = flatten_tags(&p18, &ds.test);
        TaskOutcome {
            disagreement: masked_disagreement(&flat17, &flat18, &mask),
            quality17: entity_micro_f1(&p17, &ds.test),
            quality18: entity_micro_f1(&p18, &ds.test),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::ner::NerSpec;
    use crate::tasks::sentiment::SentimentSpec;
    use embedstab_corpus::{LatentModel, LatentModelConfig};
    use embedstab_linalg::Mat;
    use rand::SeedableRng;

    fn tiny_model() -> LatentModel {
        LatentModel::new(&LatentModelConfig {
            vocab_size: 80,
            n_topics: 6, // NER generation needs at least 6 topics
            ..Default::default()
        })
    }

    fn random_embedding(vocab: usize, dim: usize, seed: u64) -> Embedding {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Embedding::new(Mat::random_normal(vocab, dim, &mut rng))
    }

    #[test]
    fn sentiment_task_is_deterministic_and_bounded() {
        let model = tiny_model();
        let ds = Arc::new(
            SentimentSpec {
                n_train: 60,
                n_valid: 20,
                n_test: 40,
                ..SentimentSpec::sst2()
            }
            .generate(&model),
        );
        let task = SentimentTask::new(ds, 10);
        assert_eq!(task.name(), "sst2");
        let q17 = random_embedding(80, 8, 1);
        let q18 = random_embedding(80, 8, 2);
        let spec = PairSpec::new(0);
        let a = task.train_eval(&q17, &q18, &spec);
        let b = task.train_eval(&q17, &q18, &spec);
        assert_eq!(a, b, "task must be deterministic");
        assert!((0.0..=1.0).contains(&a.disagreement));
        assert!((0.0..=1.0).contains(&a.quality17));
        // Identical embeddings with matched seeds cannot disagree.
        let same = task.train_eval(&q17, &q17, &spec);
        assert_eq!(same.disagreement, 0.0);
    }

    #[test]
    fn ner_task_runs_and_relaxed_seeds_differ() {
        let model = tiny_model();
        let ds = Arc::new(
            NerSpec {
                n_train: 30,
                n_valid: 10,
                n_test: 20,
                ..Default::default()
            }
            .generate(&model),
        );
        let task = NerTask::new(ds, 4, 1);
        assert_eq!(task.name(), "ner");
        let q17 = random_embedding(80, 8, 1);
        let q18 = random_embedding(80, 8, 2);
        let fixed = task.train_eval(&q17, &q18, &PairSpec::new(0));
        assert!((0.0..=1.0).contains(&fixed.disagreement));
        let relaxed_spec = PairSpec {
            relax_seeds: true,
            ..PairSpec::new(0)
        };
        let (i18, s18) = relaxed_spec.seeds18();
        assert_eq!((i18, s18), (1000, 2000));
    }
}
