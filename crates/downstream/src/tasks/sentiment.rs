//! Synthetic binary sentiment datasets standing in for SST-2, MR, Subj, and
//! MPQA (paper Section 3, Appendix C.3.1).
//!
//! Each dataset owns a sentiment direction `beta` in the latent space.
//! A sentence is sampled by drawing a document vector biased along
//! `±beta` (its label) and then sampling words from the latent model's
//! unigram-modulated softmax around that vector. Words therefore carry
//! label information exactly to the extent that embeddings recover the
//! latent space — mirroring how real sentiment words carry polarity.
//! The four presets differ in size, sentence length, signal strength, and
//! label noise, giving the spread of task difficulty the paper's four
//! datasets exhibit.

use embedstab_corpus::{codec, LatentModel};
use embedstab_linalg::{vecops, Mat};
use rand::{RngExt, SeedableRng};

/// One labelled sentence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SentimentExample {
    /// Word ids.
    pub tokens: Vec<u32>,
    /// Binary sentiment label.
    pub label: bool,
}

/// A generated dataset with fixed train/validation/test splits.
#[derive(Clone, Debug)]
pub struct SentimentDataset {
    /// Dataset name (e.g. `"sst2"`).
    pub name: String,
    /// Training split.
    pub train: Vec<SentimentExample>,
    /// Validation split (hyperparameter tuning).
    pub valid: Vec<SentimentExample>,
    /// Test split (instability is measured here).
    pub test: Vec<SentimentExample>,
}

impl SentimentDataset {
    /// Appends the dataset to `out` in the world-cache byte layout: the
    /// name (length-prefixed UTF-8), then the train/valid/test splits,
    /// each a `u64`-counted list of `(tokens: length-prefixed u32 list,
    /// label: u8)` examples.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u32(out, self.name.len() as u32);
        out.extend_from_slice(self.name.as_bytes());
        for split in [&self.train, &self.valid, &self.test] {
            codec::put_u64(out, split.len() as u64);
            for ex in split {
                codec::put_u32_slice(out, &ex.tokens);
                out.push(ex.label as u8);
            }
        }
    }

    /// Reads one [`SentimentDataset::encode_into`]-encoded dataset from
    /// the front of `r`, advancing it. Returns `None` on truncated or
    /// inconsistent input.
    pub fn decode_from(r: &mut &[u8]) -> Option<SentimentDataset> {
        let name_len = codec::take_u32(r)? as usize;
        if r.len() < name_len {
            return None;
        }
        let name = std::str::from_utf8(&r[..name_len]).ok()?.to_string();
        *r = &r[name_len..];
        let mut splits = Vec::with_capacity(3);
        for _ in 0..3 {
            // Each example costs at least its 8-byte token-count prefix
            // plus the label byte.
            let n = codec::take_len(r, 9)?;
            let mut split = Vec::with_capacity(n);
            for _ in 0..n {
                let tokens = codec::take_u32_slice(r)?;
                let (&label, rest) = r.split_first()?;
                *r = rest;
                if label > 1 {
                    return None;
                }
                split.push(SentimentExample {
                    tokens,
                    label: label == 1,
                });
            }
            splits.push(split);
        }
        let test = splits.pop().expect("three splits");
        let valid = splits.pop().expect("three splits");
        let train = splits.pop().expect("three splits");
        Some(SentimentDataset {
            name,
            train,
            valid,
            test,
        })
    }
}

/// Generator parameters for one sentiment dataset.
#[derive(Clone, Debug)]
pub struct SentimentSpec {
    /// Dataset name.
    pub name: String,
    /// Split sizes.
    pub n_train: usize,
    /// Validation size.
    pub n_valid: usize,
    /// Test size.
    pub n_test: usize,
    /// Sentence length range (inclusive).
    pub len_range: (usize, usize),
    /// How strongly the document vector is biased along the sentiment
    /// direction; higher = easier task.
    pub strength: f64,
    /// Standard deviation of the document-vector noise.
    pub doc_noise: f64,
    /// Probability of flipping a label after generation.
    pub label_noise: f64,
    /// Word softmax temperature.
    pub temperature: f64,
    /// Generator seed (also seeds the dataset's `beta`).
    pub seed: u64,
}

impl SentimentSpec {
    /// SST-2 analogue: the headline dataset of the paper's figures.
    pub fn sst2() -> Self {
        SentimentSpec {
            name: "sst2".into(),
            n_train: 1600,
            n_valid: 300,
            n_test: 700,
            len_range: (8, 20),
            strength: 1.0,
            doc_noise: 0.8,
            label_noise: 0.06,
            temperature: 1.0,
            seed: 101,
        }
    }

    /// MR analogue: the paper's least stable sentiment task.
    pub fn mr() -> Self {
        SentimentSpec {
            name: "mr".into(),
            n_train: 1200,
            n_valid: 250,
            n_test: 600,
            len_range: (10, 24),
            strength: 0.6,
            doc_noise: 1.0,
            label_noise: 0.12,
            temperature: 1.1,
            seed: 102,
        }
    }

    /// Subj analogue: the paper's most stable sentiment task.
    pub fn subj() -> Self {
        SentimentSpec {
            name: "subj".into(),
            n_train: 2000,
            n_valid: 300,
            n_test: 700,
            len_range: (8, 18),
            strength: 1.5,
            doc_noise: 0.6,
            label_noise: 0.02,
            temperature: 0.9,
            seed: 103,
        }
    }

    /// MPQA analogue: short phrases.
    pub fn mpqa() -> Self {
        SentimentSpec {
            name: "mpqa".into(),
            n_train: 1400,
            n_valid: 250,
            n_test: 600,
            len_range: (2, 7),
            strength: 1.1,
            doc_noise: 0.8,
            label_noise: 0.08,
            temperature: 1.0,
            seed: 104,
        }
    }

    /// The paper's four sentiment datasets.
    pub fn all_four() -> Vec<SentimentSpec> {
        vec![Self::sst2(), Self::mr(), Self::subj(), Self::mpqa()]
    }

    /// Generates the dataset from a latent model (deterministic given the
    /// spec).
    ///
    /// # Panics
    ///
    /// Panics if the length range is empty or inverted.
    pub fn generate(&self, model: &LatentModel) -> SentimentDataset {
        assert!(
            self.len_range.0 >= 1 && self.len_range.0 <= self.len_range.1,
            "invalid sentence length range"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let d = model.word_vecs.cols();
        // The dataset's sentiment direction in latent space. A word's
        // projection onto a fixed direction shrinks as 1/sqrt(D), so the
        // signal strength is rescaled to keep task difficulty comparable
        // across latent dimensions (presets were calibrated at D = 16).
        let mut beta = Mat::random_normal(1, d, &mut rng).into_vec();
        vecops::normalize(&mut beta);
        let strength = self.strength * (d as f64 / 16.0).sqrt();

        let total = self.n_train + self.n_valid + self.n_test;
        let mut examples = Vec::with_capacity(total);
        for i in 0..total {
            let label = i % 2 == 0; // balanced labels
            let sign = if label { 1.0 } else { -1.0 };
            let noise = Mat::random_normal(1, d, &mut rng);
            let h: Vec<f64> = (0..d)
                .map(|j| sign * strength * beta[j] + self.doc_noise * noise[(0, j)])
                .collect();
            let len = rng.random_range(self.len_range.0..=self.len_range.1);
            let tokens = model
                .word_sampler(&h, self.temperature)
                .sample_many(len, &mut rng);
            let label = if rng.random::<f64>() < self.label_noise {
                !label
            } else {
                label
            };
            examples.push(SentimentExample { tokens, label });
        }
        crate::nn::shuffle(&mut examples, &mut rng);
        let mut valid = examples.split_off(self.n_train);
        let test = valid.split_off(self.n_valid);
        SentimentDataset {
            name: self.name.clone(),
            train: examples,
            valid,
            test,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_corpus::LatentModelConfig;

    fn model() -> LatentModel {
        LatentModel::new(&LatentModelConfig {
            vocab_size: 300,
            n_topics: 8,
            ..Default::default()
        })
    }

    #[test]
    fn splits_have_requested_sizes() {
        let m = model();
        let spec = SentimentSpec {
            n_train: 100,
            n_valid: 20,
            n_test: 30,
            ..SentimentSpec::sst2()
        };
        let ds = spec.generate(&m);
        assert_eq!(ds.train.len(), 100);
        assert_eq!(ds.valid.len(), 20);
        assert_eq!(ds.test.len(), 30);
    }

    #[test]
    fn labels_roughly_balanced() {
        let m = model();
        let ds = SentimentSpec::sst2().generate(&m);
        let pos = ds.train.iter().filter(|e| e.label).count();
        let frac = pos as f64 / ds.train.len() as f64;
        assert!((frac - 0.5).abs() < 0.1, "positive fraction {frac}");
    }

    #[test]
    fn deterministic_given_spec() {
        let m = model();
        let a = SentimentSpec::mr().generate(&m);
        let b = SentimentSpec::mr().generate(&m);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn codec_round_trips_every_split() {
        let m = model();
        let ds = SentimentSpec {
            n_train: 40,
            n_valid: 10,
            n_test: 15,
            ..SentimentSpec::mpqa()
        }
        .generate(&m);
        let mut bytes = Vec::new();
        ds.encode_into(&mut bytes);
        let r = &mut bytes.as_slice();
        let back = SentimentDataset::decode_from(r).expect("decodes");
        assert!(r.is_empty());
        assert_eq!(back.name, ds.name);
        assert_eq!(back.train, ds.train);
        assert_eq!(back.valid, ds.valid);
        assert_eq!(back.test, ds.test);
        for cut in 0..bytes.len() {
            assert!(SentimentDataset::decode_from(&mut &bytes[..cut]).is_none());
        }
    }

    #[test]
    fn labels_are_learnable_from_latent_vectors() {
        // A linear probe on ground-truth latent averages must beat chance
        // comfortably; otherwise embeddings could never learn the task.
        let m = model();
        let ds = SentimentSpec::sst2().generate(&m);
        // Score = <avg latent vector of sentence, mean difference direction>.
        let d = m.word_vecs.cols();
        let avg = |e: &SentimentExample| -> Vec<f64> {
            let mut v = vec![0.0; d];
            for &t in &e.tokens {
                vecops::axpy(
                    1.0 / e.tokens.len() as f64,
                    m.word_vecs.row(t as usize),
                    &mut v,
                );
            }
            v
        };
        let mut mean_pos = vec![0.0; d];
        let mut mean_neg = vec![0.0; d];
        let (mut np, mut nn) = (0.0, 0.0);
        for e in &ds.train {
            let v = avg(e);
            if e.label {
                vecops::axpy(1.0, &v, &mut mean_pos);
                np += 1.0;
            } else {
                vecops::axpy(1.0, &v, &mut mean_neg);
                nn += 1.0;
            }
        }
        let w: Vec<f64> = (0..d)
            .map(|j| mean_pos[j] / np - mean_neg[j] / nn)
            .collect();
        let mut correct = 0;
        for e in &ds.test {
            let pred = vecops::dot(&avg(e), &w) > 0.0;
            if pred == e.label {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.test.len() as f64;
        assert!(
            acc > 0.65,
            "latent probe accuracy {acc} too low for learnable task"
        );
    }

    #[test]
    fn presets_have_distinct_names() {
        let names: Vec<String> = SentimentSpec::all_four()
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(names, vec!["sst2", "mr", "subj", "mpqa"]);
    }
}
