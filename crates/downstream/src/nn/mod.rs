//! Neural-network training primitives shared by the downstream models.

pub use embedstab_linalg::opt::Adam;

use rand::{Rng, RngExt};

/// Seeded Fisher-Yates shuffle used by every trainer's sampling loop.
pub fn shuffle<T>(xs: &mut [T], rng: &mut impl Rng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

/// Clips a gradient vector to a maximum global L2 norm, in place.
/// Returns the pre-clip norm.
pub fn clip_global_norm(grad: &mut [f64], max_norm: f64) -> f64 {
    let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
    if norm > max_norm && norm > 0.0 {
        let s = max_norm / norm;
        for g in grad.iter_mut() {
            *g *= s;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        let mut r1 = rand::rngs::StdRng::seed_from_u64(5);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(5);
        shuffle(&mut a, &mut r1);
        shuffle(&mut b, &mut r2);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn clip_reduces_large_norms_only() {
        let mut g = vec![3.0, 4.0];
        let norm = clip_global_norm(&mut g, 1.0);
        assert!((norm - 5.0).abs() < 1e-12);
        assert!((g[0] - 0.6).abs() < 1e-12);
        let mut small = vec![0.1, 0.1];
        clip_global_norm(&mut small, 1.0);
        assert_eq!(small, vec![0.1, 0.1]);
    }
}
