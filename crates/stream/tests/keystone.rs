//! Keystone test for the incremental-worlds subsystem.
//!
//! The contract, end to end: a service that streams corpus increments
//! must hold *bitwise* the same counting state — co-occurrence table and
//! PPMI matrix — as a service that recounts the final corpus from
//! scratch. Only the warm-started SVD stage is allowed to drift, and that
//! drift is pinned under [`WARM_SVD_EIS_TOLERANCE`].

use embedstab_core::MeasureSuite;
use embedstab_corpus::{Cooc, CoocConfig, Corpus, CorpusConfig, LatentModel, LatentModelConfig};
use embedstab_pipeline::cache::scratch_dir;
use embedstab_pipeline::{Scale, World};
use embedstab_quant::Precision;
use embedstab_serve::{Slo, TenantRegistry};
use embedstab_stream::{
    checkpoint_path, ContinuousRetrainer, RetrainMode, RetrainerConfig, StreamError,
    WARM_SVD_EIS_TOLERANCE,
};

const VOCAB: usize = 60;
const WINDOW: usize = 3;

fn cooc_config() -> CoocConfig {
    CoocConfig {
        window: WINDOW,
        distance_weighting: false,
    }
}

fn retrainer_config(mode: RetrainMode) -> RetrainerConfig {
    RetrainerConfig {
        cooc: cooc_config(),
        mode,
        ..RetrainerConfig::default()
    }
}

fn registry() -> TenantRegistry {
    TenantRegistry::new(scratch_dir("stream_keystone"))
}

/// A deterministic base corpus plus a sequence of drifted increments.
fn corpus_and_increments(n_increments: usize) -> (Vec<Vec<u32>>, Vec<Vec<Vec<u32>>>) {
    let model = LatentModel::new(&LatentModelConfig {
        vocab_size: VOCAB,
        latent_dim: 6,
        n_topics: 4,
        seed: 7,
        ..Default::default()
    });
    let base = model
        .generate_corpus(&CorpusConfig {
            n_tokens: 3000,
            seed: 11,
            ..Default::default()
        })
        .docs()
        .to_vec();
    let increments = (0..n_increments)
        .map(|k| {
            model
                .generate_corpus(&CorpusConfig {
                    n_tokens: 400,
                    seed: 100 + k as u64,
                    ..Default::default()
                })
                .docs()
                .to_vec()
        })
        .collect();
    (base, increments)
}

fn cooc_bits(c: &Cooc) -> (u64, Vec<(u32, u32, u64)>, Vec<u64>) {
    (
        c.total().to_bits(),
        c.entries()
            .into_iter()
            .map(|(i, j, v)| (i, j, v.to_bits()))
            .collect(),
        c.row_sums().iter().map(|v| v.to_bits()).collect(),
    )
}

fn ppmi_bits(m: &embedstab_corpus::SparseMatrix) -> Vec<(u32, u32, u64)> {
    m.iter_entries()
        .map(|(i, j, v)| (i, j, v.to_bits()))
        .collect()
}

#[test]
fn incremental_statistics_match_from_scratch_bitwise() {
    let (base, increments) = corpus_and_increments(3);
    let mut inc = ContinuousRetrainer::new(
        VOCAB,
        retrainer_config(RetrainMode::Incremental),
        registry(),
    )
    .expect("valid config");
    let mut scratch = ContinuousRetrainer::new(
        VOCAB,
        retrainer_config(RetrainMode::FromScratch),
        registry(),
    )
    .expect("valid config");

    inc.ingest(base.clone()).expect("base in vocab");
    scratch.ingest(base).expect("base in vocab");
    for delta in increments {
        inc.ingest(delta.clone()).expect("increment in vocab");
        scratch.ingest(delta).expect("increment in vocab");
        inc.refresh_statistics().expect("incremental refresh");
        scratch.refresh_statistics().expect("full recount");
        // The streamed table is bitwise the recounted table...
        assert_eq!(cooc_bits(inc.cooc()), cooc_bits(scratch.cooc()));
        // ...and the incrementally refreshed PPMI is bitwise the
        // from-scratch PPMI: the exact-PPMI path has no tolerance.
        assert_eq!(ppmi_bits(inc.ppmi()), ppmi_bits(scratch.ppmi()));
    }
    assert_eq!(inc.fingerprint(), scratch.fingerprint());
}

#[test]
fn first_incremental_retrain_is_bitwise_cold_then_warm_stays_in_tolerance() {
    let (base, increments) = corpus_and_increments(2);
    let dim = 8;
    let mut inc = ContinuousRetrainer::new(
        VOCAB,
        retrainer_config(RetrainMode::Incremental),
        registry(),
    )
    .expect("valid config");
    let mut scratch = ContinuousRetrainer::new(
        VOCAB,
        retrainer_config(RetrainMode::FromScratch),
        registry(),
    )
    .expect("valid config");
    inc.ingest(base.clone()).expect("base in vocab");
    scratch.ingest(base).expect("base in vocab");

    // Step 1: no stored basis yet, so the incremental service trains
    // cold on bitwise-identical PPMI with the same seed — identical bits.
    let e_inc = inc.retrain(dim).expect("retrain");
    let e_cold = scratch.retrain(dim).expect("retrain");
    let bits = |e: &embedstab_embeddings::Embedding| {
        (0..e.vocab_size())
            .flat_map(|i| e.mat().row(i).iter().map(|v| v.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(bits(&e_inc), bits(&e_cold));

    // Later steps: the warm start is the one approximate stage. Pin its
    // EIS drift from the cold retrain of the same statistics under the
    // recorded tolerance.
    for delta in increments {
        inc.ingest(delta.clone()).expect("increment in vocab");
        scratch.ingest(delta).expect("increment in vocab");
        let warm = inc.retrain(dim).expect("warm retrain");
        let cold = scratch.retrain(dim).expect("cold retrain");
        let suite = MeasureSuite::new(&cold, &cold, 3.0, 42);
        let eis = suite.compute_all(&cold, &warm).eis;
        assert!(
            eis < WARM_SVD_EIS_TOLERANCE,
            "warm-vs-cold EIS {eis} exceeds recorded tolerance {WARM_SVD_EIS_TOLERANCE}"
        );
    }
}

#[test]
fn fingerprint_is_split_invariant() {
    let (base, increments) = corpus_and_increments(3);
    // One service takes everything as a single increment...
    let mut one_shot = ContinuousRetrainer::new(
        VOCAB,
        retrainer_config(RetrainMode::Incremental),
        registry(),
    )
    .expect("valid config");
    let mut all = base.clone();
    for delta in &increments {
        all.extend(delta.iter().cloned());
    }
    one_shot.ingest(all).expect("in vocab");
    // ...the other streams the same documents in four pieces.
    let mut streamed = ContinuousRetrainer::new(
        VOCAB,
        retrainer_config(RetrainMode::Incremental),
        registry(),
    )
    .expect("valid config");
    streamed.ingest(base).expect("in vocab");
    for delta in increments {
        streamed.ingest(delta).expect("in vocab");
    }
    assert_eq!(one_shot.fingerprint(), streamed.fingerprint());
    assert_ne!(one_shot.increments(), streamed.increments());
}

#[test]
fn from_world_adopts_state_and_stream_fingerprint() {
    let world = World::build(&Scale::Tiny.params(), 3);
    let svc = ContinuousRetrainer::from_world(
        &world,
        retrainer_config(RetrainMode::Incremental),
        registry(),
    )
    .expect("valid config");
    // Before any increment the service *is* the world's '18 corpus state:
    // content fingerprints agree, and the adopted table is the cached one.
    assert_eq!(svc.fingerprint(), world.stream_fingerprint());
    assert_eq!(cooc_bits(svc.cooc()), cooc_bits(&world.stats18.cooc_flat));
    assert_eq!(ppmi_bits(svc.ppmi()), ppmi_bits(&world.stats18.ppmi));
    // The config is pinned to the world's counting parameters, whatever
    // the caller passed.
    assert_eq!(svc.config().cooc.window, world.params.window);
    assert!(!svc.config().cooc.distance_weighting);
}

#[test]
fn checkpoint_roundtrip_resumes_bitwise() {
    let dir = scratch_dir("stream_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let (base, increments) = corpus_and_increments(2);
    let mut svc = ContinuousRetrainer::new(
        VOCAB,
        retrainer_config(RetrainMode::Incremental),
        registry(),
    )
    .expect("valid config");
    svc.ingest(base).expect("in vocab");
    svc.ingest(increments[0].clone()).expect("in vocab");
    svc.retrain(8).expect("retrain stores a warm basis");

    let path = svc.save_checkpoint(&dir).expect("checkpoint write");
    assert_eq!(path, checkpoint_path(&dir, svc.fingerprint()));

    let resumed = ContinuousRetrainer::resume(
        &path,
        retrainer_config(RetrainMode::Incremental),
        registry(),
    )
    .expect("read ok")
    .expect("checkpoint decodes");
    assert_eq!(resumed.fingerprint(), svc.fingerprint());
    assert_eq!(resumed.increments(), svc.increments());
    assert_eq!(cooc_bits(resumed.cooc()), cooc_bits(svc.cooc()));
    assert_eq!(ppmi_bits(resumed.ppmi()), ppmi_bits(svc.ppmi()));

    // Both copies stream the next increment to the same bits: resuming is
    // invisible to the keystone contract.
    let mut live = svc;
    let mut cold = resumed;
    live.ingest(increments[1].clone()).expect("in vocab");
    cold.ingest(increments[1].clone()).expect("in vocab");
    live.refresh_statistics().expect("refresh");
    cold.refresh_statistics().expect("refresh");
    assert_eq!(cooc_bits(live.cooc()), cooc_bits(cold.cooc()));
    assert_eq!(ppmi_bits(live.ppmi()), ppmi_bits(cold.ppmi()));

    // Corrupt and mismatched files are misses, never panics.
    let mut bytes = std::fs::read(&path).expect("read back");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).expect("rewrite");
    assert!(ContinuousRetrainer::resume(
        &path,
        retrainer_config(RetrainMode::Incremental),
        registry(),
    )
    .expect("read ok")
    .is_none());
    assert!(ContinuousRetrainer::resume(
        &dir.join("stream_0000000000000000.ckpt"),
        retrainer_config(RetrainMode::Incremental),
        registry(),
    )
    .expect("missing file is a miss, not an error")
    .is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn step_submits_gate_scored_candidates_per_tenant() {
    let dir = scratch_dir("stream_step");
    let _ = std::fs::remove_dir_all(&dir);
    let (base, increments) = corpus_and_increments(2);
    let mut registry = TenantRegistry::new(&dir);
    // An unbounded tenant always promotes; the strict tenant's ceiling of
    // zero holds every post-bootstrap candidate (any drift scores > 0).
    registry
        .register_config("open", Slo::unbounded(8 * 32), 8, Precision::FULL)
        .expect("valid tenant");
    registry
        .register_config(
            "strict",
            Slo {
                max_predicted_instability: 0.0,
                memory_budget_bits: 8 * 32,
            },
            8,
            Precision::FULL,
        )
        .expect("valid tenant");

    let mut svc =
        ContinuousRetrainer::new(VOCAB, retrainer_config(RetrainMode::Incremental), registry)
            .expect("valid config");

    let report = svc.step(base).expect("first step");
    assert_eq!(report.outcomes.len(), 2);
    for t in &report.outcomes {
        assert!(
            t.outcome.is_live() && t.outcome.evaluation().is_none(),
            "first submit bootstraps {}",
            t.tenant
        );
    }

    for delta in increments {
        let report = svc.step(delta).expect("step");
        let names: Vec<&str> = report.outcomes.iter().map(|t| t.tenant.as_str()).collect();
        assert_eq!(names, ["open", "strict"], "tenant-name order");
        let open = &report.outcomes[0].outcome;
        let strict = &report.outcomes[1].outcome;
        assert!(open.is_live(), "unbounded SLO promotes");
        assert!(!strict.is_live(), "zero-ceiling SLO holds");
        // Held candidates still carry their gate scores — the monitoring
        // half of the Submit contract.
        let eval = strict.evaluation().expect("held candidates are scored");
        assert!(eval.predicted_instability > 0.0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn errors_are_typed_and_leave_state_intact() {
    let mut svc = ContinuousRetrainer::new(
        VOCAB,
        retrainer_config(RetrainMode::Incremental),
        registry(),
    )
    .expect("valid config");
    svc.ingest(vec![vec![0, 1, 2]]).expect("in vocab");
    let fp = svc.fingerprint();

    let err = svc
        .ingest(vec![vec![0], vec![VOCAB as u32]])
        .expect_err("token out of vocabulary");
    assert!(matches!(err, StreamError::Cooc(_)));
    assert_eq!(svc.fingerprint(), fp, "failed ingest leaves state alone");

    let err = svc.retrain(0).expect_err("dim 0 invalid");
    assert!(matches!(err, StreamError::InvalidDim { dim: 0, .. }));
    let err = svc.retrain(VOCAB + 1).expect_err("dim > vocab invalid");
    assert!(matches!(err, StreamError::InvalidDim { .. }));

    let zero_window = ContinuousRetrainer::new(
        VOCAB,
        RetrainerConfig {
            cooc: CoocConfig {
                window: 0,
                distance_weighting: false,
            },
            ..RetrainerConfig::default()
        },
        registry(),
    );
    assert!(matches!(zero_window, Err(StreamError::Cooc(_))));
}

#[test]
fn streamed_service_matches_one_shot_count() {
    // The delta path against the ground truth `Cooc::count`, through the
    // service API rather than `CoocDelta` directly.
    let (base, increments) = corpus_and_increments(2);
    let mut svc = ContinuousRetrainer::new(
        VOCAB,
        retrainer_config(RetrainMode::Incremental),
        registry(),
    )
    .expect("valid config");
    let mut all = base.clone();
    svc.ingest(base).expect("in vocab");
    for delta in increments {
        all.extend(delta.iter().cloned());
        svc.ingest(delta).expect("in vocab");
    }
    let one_shot = Cooc::count(&Corpus::from_docs(all), VOCAB, &cooc_config());
    assert_eq!(cooc_bits(svc.cooc()), cooc_bits(&one_shot));
}
