//! Property test for the streaming subsystem's bitwise contract: however
//! a corpus is split into increments, streaming the pieces through
//! [`CoocDelta`] reproduces the one-shot [`Cooc::count`] over the whole
//! corpus bit for bit — map values, `total`, `entries()`, `row_sums()`.
//!
//! This is the invariant everything downstream (incremental PPMI, the
//! content fingerprint, checkpoint resume) stands on, so it is checked
//! over arbitrary corpora and arbitrary k-splits, not just the curated
//! cases in the unit tests.

use embedstab_corpus::{Cooc, CoocConfig, Corpus};
use embedstab_stream::CoocDelta;
use proptest::prelude::*;

const VOCAB: usize = 12;

/// An arbitrary small corpus (documents of in-vocabulary tokens, empty
/// documents allowed), a window from 1..=4, and a k-split of the corpus
/// expressed as cut fractions.
type Scenario = (Vec<Vec<u32>>, usize, Vec<f64>);

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        collection::vec(collection::vec(0u32..VOCAB as u32, 0..12), 1..16),
        1usize..5,
        collection::vec(0.0f64..1.0, 0..4),
    )
}

/// Splits `docs` at the given fractional cut points into k contiguous
/// batches (k = cuts.len() + 1), preserving order; batches may be empty.
fn split(docs: &[Vec<u32>], cuts: &[f64]) -> Vec<Vec<Vec<u32>>> {
    let mut idx: Vec<usize> = cuts
        .iter()
        .map(|f| ((docs.len() as f64) * f) as usize)
        .collect();
    idx.sort_unstable();
    let mut batches = Vec::with_capacity(idx.len() + 1);
    let mut start = 0;
    for cut in idx {
        batches.push(docs[start..cut].to_vec());
        start = cut;
    }
    batches.push(docs[start..].to_vec());
    batches
}

fn bits(c: &Cooc) -> (u64, Vec<(u32, u32, u64)>, Vec<u64>) {
    (
        c.total().to_bits(),
        c.entries()
            .into_iter()
            .map(|(i, j, v)| (i, j, v.to_bits()))
            .collect(),
        c.row_sums().iter().map(|v| v.to_bits()).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_k_split_streams_to_the_one_shot_bits(
        (docs, window, cuts) in scenario(),
        dw in 0usize..2,
    ) {
        let config = CoocConfig { window, distance_weighting: dw == 1 };
        let one_shot = Cooc::count(&Corpus::from_docs(docs.clone()), VOCAB, &config);

        let mut streamed = Cooc::empty(VOCAB);
        for batch in split(&docs, &cuts) {
            let mut delta = CoocDelta::new(VOCAB, config).expect("window >= 1");
            delta.push_docs(batch).expect("tokens in vocab");
            delta.apply(&mut streamed).expect("same vocab");
        }

        prop_assert_eq!(bits(&streamed), bits(&one_shot));
    }

    #[test]
    fn dirty_rows_cover_exactly_the_changed_rows(
        (docs, window, _) in scenario(),
    ) {
        // One batch against an empty table: the reported dirty rows must
        // be exactly the rows with nonzero counts, sorted and deduplicated.
        let config = CoocConfig { window, distance_weighting: false };
        let mut table = Cooc::empty(VOCAB);
        let mut delta = CoocDelta::new(VOCAB, config).expect("window >= 1");
        delta.push_docs(docs).expect("tokens in vocab");
        let report = delta.apply(&mut table).expect("same vocab");

        let mut expected: Vec<u32> = (0..VOCAB as u32)
            .filter(|&i| table.entries().iter().any(|&(r, _, _)| r == i))
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(report.dirty_rows, expected);
    }
}
