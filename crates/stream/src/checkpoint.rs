//! Checkpointing for the continuous retrainer.
//!
//! A service that has streamed increments holds a corpus no
//! `(parameters, seed)` pair describes, so checkpoints are keyed by the
//! **content** fingerprint ([`ContinuousRetrainer::fingerprint`]) and
//! verified against it on resume. The file carries the full counting
//! state — corpus, co-occurrence table (in counting order, like the
//! world cache), PPMI, and the per-dimension warm bases — so a resumed
//! service continues bitwise where the saved one stopped.
//!
//! Codec conventions follow `corpus::codec` / `pipeline::cache`:
//! little-endian, length-checked reads, corrupt or mismatched input is a
//! miss (`None`), and writes are atomic (temp file + rename).

use std::collections::BTreeMap;
use std::io::{self, Read};
use std::path::{Path, PathBuf};

use embedstab_corpus::{codec, corpus_state_fingerprint, Cooc, Corpus, SparseMatrix};
use embedstab_pipeline::cache::{atomic_write, decode_mat, encode_mat, read_u32};
use embedstab_serve::TenantRegistry;

use crate::error::StreamError;
use crate::service::{ContinuousRetrainer, RetrainerConfig};

/// Bump when the checkpoint byte layout changes; older files then decode
/// as misses instead of misparsing.
pub const STREAM_CHECKPOINT_FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"ESSC";

/// Where a service with the given content fingerprint checkpoints inside
/// `dir`. Content-addressed: two services holding the same corpus under
/// the same configuration share a path, however their corpora were
/// accumulated.
pub fn checkpoint_path(dir: &Path, fingerprint: u64) -> PathBuf {
    dir.join(format!("stream_{fingerprint:016x}.ckpt"))
}

impl ContinuousRetrainer {
    /// Writes the service's counting state to
    /// [`checkpoint_path`]`(dir, self.fingerprint())`, atomically,
    /// returning the path. Tenant snapshot stores persist themselves; the
    /// checkpoint covers only the retraining state.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating `dir` or writing the file.
    pub fn save_checkpoint(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = checkpoint_path(dir, self.fingerprint());
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        codec::put_u32(&mut out, STREAM_CHECKPOINT_FORMAT_VERSION);
        codec::put_u64(&mut out, self.fingerprint());
        codec::put_u64(&mut out, self.vocab_size() as u64);
        codec::put_u64(&mut out, self.config().cooc.window as u64);
        codec::put_u64(&mut out, self.config().cooc.distance_weighting as u64);
        codec::put_u64(&mut out, self.increments());
        self.corpus().encode_into(&mut out);
        self.cooc().encode_into(&mut out);
        self.ppmi().encode_into(&mut out);
        codec::put_u64(&mut out, self.bases().len() as u64);
        for (&dim, basis) in self.bases() {
            codec::put_u64(&mut out, dim as u64);
            encode_mat(&mut out, basis);
        }
        atomic_write(&path, &out)?;
        Ok(path)
    }

    /// Resumes a service from `path`, validating the checkpoint against
    /// `config` (the counting configuration must match what the file was
    /// saved under) and its own content fingerprint. Returns `Ok(None)` —
    /// a miss, the caller rebuilds from source — when the file does not
    /// exist, is truncated or corrupt, was written under a different
    /// counting configuration, or its fingerprint does not match the
    /// state it carries.
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] for I/O failures other than the file being
    /// absent.
    pub fn resume(
        path: &Path,
        config: RetrainerConfig,
        registry: TenantRegistry,
    ) -> Result<Option<Self>, StreamError> {
        let mut bytes = Vec::new();
        match std::fs::File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StreamError::Io(e)),
        }
        Ok(decode_checkpoint(&bytes, config, registry))
    }
}

/// Decodes and validates one checkpoint; any inconsistency is a miss.
fn decode_checkpoint(
    mut bytes: &[u8],
    config: RetrainerConfig,
    registry: TenantRegistry,
) -> Option<ContinuousRetrainer> {
    let r = &mut bytes;
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).ok()?;
    if magic != MAGIC || read_u32(r)? != STREAM_CHECKPOINT_FORMAT_VERSION {
        return None;
    }
    let stored_fp = codec::take_u64(r)?;
    let vocab_size = usize::try_from(codec::take_u64(r)?).ok()?;
    let window = usize::try_from(codec::take_u64(r)?).ok()?;
    let distance_weighting = match codec::take_u64(r)? {
        0 => false,
        1 => true,
        _ => return None,
    };
    if window != config.cooc.window || distance_weighting != config.cooc.distance_weighting {
        return None; // saved under a different counting configuration
    }
    let increments = codec::take_u64(r)?;
    let corpus = Corpus::decode_from(r)?;
    let cooc = Cooc::decode_from(r)?;
    let ppmi = SparseMatrix::decode_from(r)?;
    if cooc.n() != vocab_size || ppmi.n_rows() != vocab_size || ppmi.n_cols() != vocab_size {
        return None;
    }
    let n_bases = codec::take_len(r, 8)?;
    let mut bases = BTreeMap::new();
    for _ in 0..n_bases {
        let dim = usize::try_from(codec::take_u64(r)?).ok()?;
        let basis = decode_mat(r)?;
        if dim == 0 || dim > vocab_size || basis.rows() != vocab_size {
            return None;
        }
        bases.insert(dim, basis);
    }
    if !r.is_empty() {
        return None;
    }
    // The file must be internally consistent with its own key: the state
    // it carries re-fingerprints to the fingerprint it claims.
    if corpus_state_fingerprint(&corpus, vocab_size, &config.cooc) != stored_fp {
        return None;
    }
    Some(ContinuousRetrainer::from_parts(
        vocab_size, config, registry, corpus, cooc, ppmi, bases, increments,
    ))
}
