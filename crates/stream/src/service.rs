//! The continuous-retraining service.
//!
//! [`ContinuousRetrainer`] owns one world's counting state — corpus,
//! co-occurrence table, PPMI — plus a [`TenantRegistry`] to publish
//! through. Feed it corpus increments; it keeps the statistics current
//! (incrementally or from scratch, per [`RetrainMode`]), trains one
//! candidate per tenant dimension, and submits each through the serving
//! layer's stability gate. This is the ROADMAP's gate-scored `Submit`
//! path: retrains arrive as increments and reach tenants only if their
//! predicted instability clears the SLO.

use std::collections::{BTreeMap, BTreeSet};

use embedstab_corpus::{
    corpus_state_fingerprint, ppmi, recompute_rows, Cooc, CoocConfig, Corpus, SparseMatrix,
};
use embedstab_embeddings::{Embedding, PpmiSvdConfig, PpmiSvdTrainer};
use embedstab_linalg::Mat;
use embedstab_pipeline::World;
use embedstab_serve::{GateOutcome, TenantRegistry};

use crate::delta::{CoocDelta, DeltaReport};
use crate::error::StreamError;

/// Measured ceiling on the EIS distance between a warm-started retrain
/// and the cold retrain of the *same* PPMI matrix. The exact-PPMI half of
/// the pipeline is bitwise; the warm SVD is the one approximate stage,
/// and its drift is pinned under this tolerance by the keystone test
/// (`tests/keystone.rs`) and recorded in `BENCH_incremental.json` so
/// every bench run re-measures it.
pub const WARM_SVD_EIS_TOLERANCE: f64 = 0.05;

/// How the service refreshes statistics and trains when a retrain is due.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetrainMode {
    /// Recount the full accumulated corpus, rebuild PPMI with
    /// [`ppmi`], and train with a cold randomized SVD — the batch
    /// pipeline's exact behavior, kept as the reference (and the bench
    /// baseline). Cost grows with the corpus.
    FromScratch,
    /// Stream count deltas into the standing table, refresh PPMI through
    /// [`recompute_rows`] over all rows (exact: bitwise identical to
    /// [`FromScratch`](RetrainMode::FromScratch)'s PPMI), and warm-start
    /// the SVD with the previous step's basis. Cost grows with the
    /// *delta*; only the SVD stage is approximate, within
    /// [`WARM_SVD_EIS_TOLERANCE`].
    Incremental,
}

/// Configuration for a [`ContinuousRetrainer`].
#[derive(Clone, Debug)]
pub struct RetrainerConfig {
    /// Counting configuration every increment is applied with.
    pub cooc: CoocConfig,
    /// Refresh/training strategy.
    pub mode: RetrainMode,
    /// Trainer hyperparameters (shared by the warm and cold paths).
    pub trainer: PpmiSvdConfig,
    /// SVD sketch seed, fixed so retrains are deterministic functions of
    /// the accumulated corpus.
    pub svd_seed: u64,
}

impl Default for RetrainerConfig {
    fn default() -> Self {
        RetrainerConfig {
            cooc: CoocConfig::default(),
            mode: RetrainMode::Incremental,
            trainer: PpmiSvdConfig::default(),
            svd_seed: 0x5eed,
        }
    }
}

/// One tenant's gate outcome within a [`StepReport`].
#[derive(Debug)]
pub struct TenantOutcome {
    /// The tenant the candidate was submitted to.
    pub tenant: String,
    /// What the gate did with it.
    pub outcome: GateOutcome,
}

/// What one [`ContinuousRetrainer::step`] did: the applied delta and the
/// per-tenant gate outcomes, in tenant-name order.
#[derive(Debug)]
pub struct StepReport {
    /// The increment's effect on the co-occurrence table.
    pub delta: DeltaReport,
    /// Gate outcome per registered tenant.
    pub outcomes: Vec<TenantOutcome>,
}

/// A long-lived retraining service: owns the counting state of one world,
/// accepts corpus increments, and publishes gate-scored candidates to its
/// tenants.
///
/// The service is a deterministic function of (initial state, increment
/// sequence, configuration): no clocks, no ambient randomness — which is
/// what makes its checkpoints ([`crate::checkpoint`]) and the bitwise
/// keystone test possible.
pub struct ContinuousRetrainer {
    vocab_size: usize,
    config: RetrainerConfig,
    registry: TenantRegistry,
    corpus: Corpus,
    cooc: Cooc,
    ppmi: SparseMatrix,
    ppmi_fresh: bool,
    pending_dirty: BTreeSet<u32>,
    bases: BTreeMap<usize, Mat>,
    increments: u64,
}

impl ContinuousRetrainer {
    /// A service over an initially empty corpus.
    ///
    /// # Errors
    ///
    /// [`StreamError::Cooc`] with
    /// [`CoocError::ZeroWindow`](embedstab_corpus::CoocError::ZeroWindow)
    /// if the counting window is zero.
    pub fn new(
        vocab_size: usize,
        config: RetrainerConfig,
        registry: TenantRegistry,
    ) -> Result<Self, StreamError> {
        // Surfaces ZeroWindow now rather than on the first increment.
        CoocDelta::new(vocab_size, config.cooc)?;
        Ok(ContinuousRetrainer {
            vocab_size,
            config,
            registry,
            corpus: Corpus::from_docs(Vec::new()),
            cooc: Cooc::empty(vocab_size),
            ppmi: SparseMatrix::new(vocab_size, vocab_size),
            ppmi_fresh: true,
            pending_dirty: BTreeSet::new(),
            bases: BTreeMap::new(),
            increments: 0,
        })
    }

    /// A service seeded from a built [`World`]: the accumulated ('18)
    /// corpus, its flat co-occurrence table, and its PPMI matrix are
    /// adopted as the starting state — no recounting. The world cached
    /// its table in counting order, so streaming continues the exact
    /// accumulation sequence a from-scratch count would have produced:
    /// the bitwise contract holds across the seed boundary.
    ///
    /// `config.cooc` is overridden with the world's counting parameters
    /// (its window, flat weighting) — the adopted statistics were counted
    /// that way, and mixing configurations would silently break the
    /// bitwise contract. Consequently
    /// [`ContinuousRetrainer::fingerprint`] starts equal to
    /// [`World::stream_fingerprint`] and diverges on the first increment.
    pub fn from_world(
        world: &World,
        mut config: RetrainerConfig,
        registry: TenantRegistry,
    ) -> Result<Self, StreamError> {
        config.cooc = CoocConfig {
            window: world.params.window,
            distance_weighting: false,
        };
        let mut svc = Self::new(world.params.vocab_size, config, registry)?;
        svc.corpus = world.pair.corpus18.clone();
        svc.cooc = world.stats18.cooc_flat.clone();
        svc.ppmi = world.stats18.ppmi.clone();
        Ok(svc)
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// The service configuration.
    pub fn config(&self) -> &RetrainerConfig {
        &self.config
    }

    /// The accumulated corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The standing co-occurrence table.
    pub fn cooc(&self) -> &Cooc {
        &self.cooc
    }

    /// The PPMI matrix as of the last refresh (empty until the first
    /// retrain if the service started empty).
    pub fn ppmi(&self) -> &SparseMatrix {
        &self.ppmi
    }

    /// The tenant registry candidates are submitted through.
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// Mutable registry access (tenant registration).
    pub fn registry_mut(&mut self) -> &mut TenantRegistry {
        &mut self.registry
    }

    /// Number of increments applied over the service's lifetime
    /// (checkpoint-persistent).
    pub fn increments(&self) -> u64 {
        self.increments
    }

    /// Rows whose counts changed since the last PPMI refresh.
    pub fn pending_dirty_rows(&self) -> Vec<u32> {
        self.pending_dirty.iter().copied().collect()
    }

    /// The content fingerprint of the world this service now holds:
    /// [`corpus_state_fingerprint`] over the accumulated corpus under the
    /// service's counting configuration. Two services that reached the
    /// same final corpus by different increment splits fingerprint
    /// identically — and identically to [`World::stream_fingerprint`]
    /// when seeded from a world before any increment. Checkpoints key on
    /// this value.
    pub fn fingerprint(&self) -> u64 {
        corpus_state_fingerprint(&self.corpus, self.vocab_size, &self.config.cooc)
    }

    /// Applies a corpus increment: validates it, streams it into the
    /// co-occurrence table, and appends it to the corpus. Statistics are
    /// refreshed lazily at the next [`ContinuousRetrainer::retrain`].
    ///
    /// # Errors
    ///
    /// [`StreamError::Cooc`] if the increment fails validation; the
    /// service state is untouched on error.
    pub fn ingest(&mut self, docs: Vec<Vec<u32>>) -> Result<DeltaReport, StreamError> {
        let mut delta = CoocDelta::new(self.vocab_size, self.config.cooc)?;
        delta.push_docs(docs)?;
        self.apply(delta)
    }

    /// Applies a pre-built [`CoocDelta`] (the zero-copy form of
    /// [`ContinuousRetrainer::ingest`]).
    ///
    /// # Errors
    ///
    /// [`StreamError::Cooc`] on vocabulary mismatch or invalid content;
    /// the service state is untouched on error.
    pub fn apply(&mut self, delta: CoocDelta) -> Result<DeltaReport, StreamError> {
        let report = delta.apply(&mut self.cooc)?;
        self.corpus.append_docs(delta.into_docs());
        if !report.dirty_rows.is_empty() {
            // Any added mass moves the PPMI total, so *all* rows are due
            // for the exact refresh; the dirty set is what changed in the
            // counts (diagnostics, approximate refreshes).
            self.pending_dirty.extend(report.dirty_rows.iter().copied());
            self.ppmi_fresh = false;
        }
        self.increments += 1;
        Ok(report)
    }

    /// Brings the PPMI matrix up to date with the counting state, per the
    /// configured [`RetrainMode`]. Normally called through
    /// [`ContinuousRetrainer::retrain`]; exposed for callers that want
    /// fresh statistics without training.
    ///
    /// # Errors
    ///
    /// [`StreamError::Cooc`] only in
    /// [`RetrainMode::FromScratch`], if the accumulated corpus fails
    /// revalidation (cannot happen for state built through this API).
    pub fn refresh_statistics(&mut self) -> Result<(), StreamError> {
        if self.ppmi_fresh {
            return Ok(());
        }
        match self.config.mode {
            RetrainMode::FromScratch => {
                self.cooc = Cooc::try_count(&self.corpus, self.vocab_size, &self.config.cooc)?;
                self.ppmi = ppmi(&self.cooc);
            }
            RetrainMode::Incremental => {
                let all_rows: Vec<u32> = (0..self.vocab_size as u32).collect();
                self.ppmi = recompute_rows(&self.ppmi, &self.cooc, &all_rows);
            }
        }
        self.pending_dirty.clear();
        self.ppmi_fresh = true;
        Ok(())
    }

    /// Trains a `dim`-dimensional candidate on the current statistics
    /// (refreshing them first if stale). In
    /// [`RetrainMode::Incremental`], the SVD warm-starts from the
    /// previous basis at this dimension when one exists; the new basis is
    /// retained for the next step.
    ///
    /// # Errors
    ///
    /// [`StreamError::InvalidDim`] if `dim` is outside
    /// `1..=vocab_size`, plus anything
    /// [`ContinuousRetrainer::refresh_statistics`] can return.
    pub fn retrain(&mut self, dim: usize) -> Result<Embedding, StreamError> {
        if dim == 0 || dim > self.vocab_size {
            return Err(StreamError::InvalidDim {
                dim,
                vocab_size: self.vocab_size,
            });
        }
        self.refresh_statistics()?;
        let trainer = PpmiSvdTrainer::new(self.config.trainer.clone());
        let seed = self.config.svd_seed;
        let candidate = match (self.config.mode, self.bases.get(&dim)) {
            (RetrainMode::Incremental, Some(warm)) => {
                trainer.train_warm(&self.ppmi, dim, seed, warm)
            }
            _ => trainer.train(&self.ppmi, dim, seed),
        };
        if self.config.mode == RetrainMode::Incremental {
            // The orthonormalized embedding columns span the candidate's
            // dominant left subspace — next step's warm seed.
            self.bases.insert(dim, candidate.mat().orthonormalize());
        }
        Ok(candidate)
    }

    /// One full service step: ingest the increment, retrain one candidate
    /// per distinct tenant dimension, and submit to every tenant through
    /// the stability gate. Outcomes come back in tenant-name order.
    ///
    /// # Errors
    ///
    /// Anything [`ContinuousRetrainer::ingest`],
    /// [`ContinuousRetrainer::retrain`], or
    /// [`TenantRegistry::submit`] can return; tenants before the failure
    /// keep their outcomes (snapshot stores are per-tenant, so there is
    /// no cross-tenant rollback to do).
    pub fn step(&mut self, docs: Vec<Vec<u32>>) -> Result<StepReport, StreamError> {
        let delta = self.ingest(docs)?;
        let specs: Vec<(String, usize)> = self
            .registry
            .tenants()
            .map(|t| (t.name().to_string(), t.dim()))
            .collect();
        let mut candidates: BTreeMap<usize, Embedding> = BTreeMap::new();
        let mut outcomes = Vec::with_capacity(specs.len());
        for (tenant, dim) in specs {
            if !candidates.contains_key(&dim) {
                let candidate = self.retrain(dim)?;
                candidates.insert(dim, candidate);
            }
            let outcome = self.registry.submit(&tenant, &candidates[&dim])?;
            outcomes.push(TenantOutcome { tenant, outcome });
        }
        Ok(StepReport { delta, outcomes })
    }

    /// Internal constructor for checkpoint resume: adopts decoded state
    /// wholesale.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        vocab_size: usize,
        config: RetrainerConfig,
        registry: TenantRegistry,
        corpus: Corpus,
        cooc: Cooc,
        ppmi: SparseMatrix,
        bases: BTreeMap<usize, Mat>,
        increments: u64,
    ) -> Self {
        ContinuousRetrainer {
            vocab_size,
            config,
            registry,
            corpus,
            cooc,
            ppmi,
            ppmi_fresh: true,
            pending_dirty: BTreeSet::new(),
            bases,
            increments,
        }
    }

    /// Checkpoint-internal view of the warm bases.
    pub(crate) fn bases(&self) -> &BTreeMap<usize, Mat> {
        &self.bases
    }
}
