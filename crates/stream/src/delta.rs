//! Corpus increments as first-class values.
//!
//! A [`CoocDelta`] is a validated batch of appended documents bound to a
//! vocabulary size and counting configuration. Applying it streams the
//! documents into an existing [`Cooc`] through
//! [`Cooc::accumulate`] — the order-preserving `+=` path that keeps the
//! table bitwise identical to a one-shot count over the concatenated
//! corpus — and reports which rows the counts touched.

use embedstab_corpus::{Cooc, CoocConfig, CoocError};

/// What applying a delta did to the co-occurrence table.
#[derive(Clone, Debug)]
pub struct DeltaReport {
    /// Sorted ids of rows whose *counts* changed. Note the asymmetry with
    /// PPMI: any added mass moves the global total and therefore every
    /// PPMI entry, so this set drives diagnostics and approximate
    /// refreshes, while the exact refresh passes all rows to
    /// [`recompute_rows`](embedstab_corpus::recompute_rows).
    pub dirty_rows: Vec<u32>,
    /// Number of documents the delta appended.
    pub added_docs: usize,
    /// Number of tokens the delta appended.
    pub added_tokens: usize,
}

/// A batch of corpus increment documents, validated against a vocabulary
/// and counting configuration at construction and push time — so by the
/// time [`CoocDelta::apply`] runs, the only remaining failure mode is a
/// vocabulary mismatch with the target table.
#[derive(Clone, Debug)]
pub struct CoocDelta {
    vocab_size: usize,
    config: CoocConfig,
    docs: Vec<Vec<u32>>,
    n_tokens: usize,
}

impl CoocDelta {
    /// An empty delta for the given vocabulary and configuration.
    ///
    /// # Errors
    ///
    /// [`CoocError::ZeroWindow`] if `config.window == 0` — a window that
    /// counts nothing is rejected here, at delta-construction time, not
    /// discovered as a silently empty table later.
    pub fn new(vocab_size: usize, config: CoocConfig) -> Result<Self, CoocError> {
        if config.window == 0 {
            return Err(CoocError::ZeroWindow);
        }
        Ok(CoocDelta {
            vocab_size,
            config,
            docs: Vec::new(),
            n_tokens: 0,
        })
    }

    /// Adds one document to the delta.
    ///
    /// # Errors
    ///
    /// [`CoocError::TokenOutOfVocab`] on the first out-of-range token;
    /// the document is not added.
    pub fn push_doc(&mut self, doc: Vec<u32>) -> Result<(), CoocError> {
        for &t in &doc {
            if (t as usize) >= self.vocab_size {
                return Err(CoocError::TokenOutOfVocab {
                    token: t,
                    vocab_size: self.vocab_size,
                });
            }
        }
        self.n_tokens += doc.len();
        self.docs.push(doc);
        Ok(())
    }

    /// Adds a batch of documents; stops at (and does not add) the first
    /// invalid one.
    ///
    /// # Errors
    ///
    /// [`CoocError::TokenOutOfVocab`] from the first failing document;
    /// documents before it *are* added.
    pub fn push_docs(&mut self, docs: Vec<Vec<u32>>) -> Result<(), CoocError> {
        for doc in docs {
            self.push_doc(doc)?;
        }
        Ok(())
    }

    /// The vocabulary size the delta validates against.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// The counting configuration the delta will apply with.
    pub fn config(&self) -> &CoocConfig {
        &self.config
    }

    /// Buffered increment documents.
    pub fn docs(&self) -> &[Vec<u32>] {
        &self.docs
    }

    /// Number of buffered documents.
    pub fn n_docs(&self) -> usize {
        self.docs.len()
    }

    /// Number of buffered tokens.
    pub fn n_tokens(&self) -> usize {
        self.n_tokens
    }

    /// True if the delta holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Streams the buffered documents into `cooc`, returning the dirty
    /// rows. The table afterwards is bitwise what a one-shot
    /// [`Cooc::count`] over (original corpus ++ these documents) would
    /// produce — same map values, same `total`, same `entries()` and
    /// `row_sums()` bits.
    ///
    /// # Errors
    ///
    /// [`CoocError::VocabMismatch`] if the table's vocabulary size
    /// differs from the delta's; the table is untouched on error.
    pub fn apply(&self, cooc: &mut Cooc) -> Result<DeltaReport, CoocError> {
        if cooc.n() != self.vocab_size {
            return Err(CoocError::VocabMismatch {
                table: cooc.n(),
                delta: self.vocab_size,
            });
        }
        let dirty_rows = cooc.accumulate(&self.docs, &self.config)?;
        Ok(DeltaReport {
            dirty_rows,
            added_docs: self.docs.len(),
            added_tokens: self.n_tokens,
        })
    }

    /// Consumes the delta, yielding its documents (for appending to the
    /// service's corpus after a successful [`CoocDelta::apply`]).
    pub fn into_docs(self) -> Vec<Vec<u32>> {
        self.docs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedstab_corpus::Corpus;

    fn config() -> CoocConfig {
        CoocConfig {
            window: 2,
            distance_weighting: false,
        }
    }

    #[test]
    fn zero_window_rejected_at_construction() {
        let err = CoocDelta::new(
            4,
            CoocConfig {
                window: 0,
                distance_weighting: false,
            },
        )
        .expect_err("zero window");
        assert_eq!(err, CoocError::ZeroWindow);
    }

    #[test]
    fn push_validates_tokens_eagerly() {
        let mut delta = CoocDelta::new(3, config()).expect("valid config");
        delta.push_doc(vec![0, 1, 2]).expect("in vocab");
        let err = delta.push_doc(vec![1, 3]).expect_err("out of vocab");
        assert_eq!(
            err,
            CoocError::TokenOutOfVocab {
                token: 3,
                vocab_size: 3
            }
        );
        assert_eq!(delta.n_docs(), 1);
        assert_eq!(delta.n_tokens(), 3);
    }

    #[test]
    fn apply_streams_bitwise_and_reports_dirty_rows() {
        let base = vec![vec![0u32, 1, 2], vec![2, 0]];
        let inc = vec![vec![3u32, 1], vec![1, 1, 3]];
        let mut cooc = Cooc::count(&Corpus::from_docs(base.clone()), 4, &config());
        let mut delta = CoocDelta::new(4, config()).expect("valid config");
        delta.push_docs(inc.clone()).expect("in vocab");
        let report = delta.apply(&mut cooc).expect("same vocab");
        assert_eq!(report.dirty_rows, vec![1, 3]);
        assert_eq!(report.added_docs, 2);
        assert_eq!(report.added_tokens, 5);
        let mut full = base;
        full.extend(inc);
        let one_shot = Cooc::count(&Corpus::from_docs(full), 4, &config());
        assert_eq!(cooc.total().to_bits(), one_shot.total().to_bits());
        let bits = |c: &Cooc| {
            c.entries()
                .into_iter()
                .map(|(i, j, v)| (i, j, v.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&cooc), bits(&one_shot));
    }

    #[test]
    fn vocab_mismatch_is_typed_and_leaves_table_untouched() {
        let mut cooc = Cooc::count(&Corpus::from_docs(vec![vec![0, 1]]), 2, &config());
        let before = cooc.total().to_bits();
        let mut delta = CoocDelta::new(3, config()).expect("valid config");
        delta.push_doc(vec![0, 2]).expect("in the delta's vocab");
        let err = delta.apply(&mut cooc).expect_err("vocab mismatch");
        assert_eq!(err, CoocError::VocabMismatch { table: 2, delta: 3 });
        assert_eq!(cooc.total().to_bits(), before);
    }
}
