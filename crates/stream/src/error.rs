//! The streaming subsystem's error type.

use std::fmt;
use std::io;

use embedstab_corpus::CoocError;

/// Why a streaming operation could not proceed. The service is long-lived
/// by design, so everything a caller can get wrong — malformed
/// increments, impossible dimensions, snapshot I/O — arrives as a value,
/// never a panic.
#[derive(Debug)]
pub enum StreamError {
    /// The increment failed co-occurrence validation (zero window,
    /// out-of-vocabulary token, vocabulary mismatch). The counting state
    /// is untouched when this is returned.
    Cooc(CoocError),
    /// A retrain was requested at a dimension outside `1..=vocab_size`.
    InvalidDim {
        /// The requested embedding dimension.
        dim: usize,
        /// The service's vocabulary size.
        vocab_size: usize,
    },
    /// Snapshot-store or gate I/O failed while submitting a candidate.
    Io(io::Error),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Cooc(e) => write!(f, "invalid corpus increment: {e}"),
            StreamError::InvalidDim { dim, vocab_size } => {
                write!(
                    f,
                    "retrain dimension {dim} outside 1..={vocab_size} (vocabulary size)"
                )
            }
            StreamError::Io(e) => write!(f, "serving submit failed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Cooc(e) => Some(e),
            StreamError::Io(e) => Some(e),
            StreamError::InvalidDim { .. } => None,
        }
    }
}

impl From<CoocError> for StreamError {
    fn from(e: CoocError) -> Self {
        StreamError::Cooc(e)
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}
