//! Incremental worlds: retrain cost proportional to the corpus *delta*,
//! not the corpus.
//!
//! The paper's setting is retraining — an embedding refreshed on an
//! updated corpus (Wiki'17 → Wiki'18) and the question of how much
//! downstream predictions flip. The batch pipeline rebuilds every
//! statistic from scratch per temporal step; this crate streams instead:
//!
//! ```text
//!   corpus increment (appended docs)
//!        │ CoocDelta::apply            — validated, then += into the
//!        ▼                               existing counts (bitwise the
//!   Cooc (+ dirty-row set)               one-shot count's accumulators)
//!        │ corpus::recompute_rows      — marginals re-summed in sorted
//!        ▼                               order; exact over all rows
//!   PPMI (bitwise == from-scratch)
//!        │ PpmiSvdTrainer::train_warm  — previous basis seeds the
//!        ▼                               range finder + subspace refresh
//!   candidate Embedding (≈ cold train, within measured tolerance)
//!        │ TenantRegistry::submit      — Procrustes align, shared-clip
//!        ▼                               quantize, measure-suite score
//!   GateOutcome (promoted / held per tenant SLO)
//! ```
//!
//! The bitwise contract: streaming any split of a corpus through
//! [`CoocDelta`] leaves the co-occurrence table — values, `total`,
//! entry order, `row_sums` — bit-identical to one
//! [`Cooc::count`](embedstab_corpus::Cooc::count) over the concatenated
//! corpus, and the exact PPMI refresh reproduces the from-scratch PPMI
//! bit-for-bit. Only the warm-started SVD is approximate, and
//! [`ContinuousRetrainer`] pins its drift under
//! [`WARM_SVD_EIS_TOLERANCE`].
//!
//! [`ContinuousRetrainer`] packages the whole loop as a service: it owns
//! a world's counting state, accepts increments, produces candidates per
//! tenant dimension, and submits them through the serving layer's
//! stability gate. [`checkpoint`] persists that state keyed by the
//! *content* fingerprint ([`ContinuousRetrainer::fingerprint`]), so an
//! incremental world always identifies as the corpus it now holds.
//!
//! This crate's sources sit under the `no-panic-in-hot-path` and
//! `no-wallclock-in-fingerprint` lint rules: malformed input surfaces as
//! [`StreamError`] / `Option`, never a panic, and nothing here reads the
//! clock (timing belongs to the bench binaries).

pub mod checkpoint;
pub mod delta;
mod error;
pub mod service;

pub use checkpoint::{checkpoint_path, STREAM_CHECKPOINT_FORMAT_VERSION};
pub use delta::{CoocDelta, DeltaReport};
pub use error::StreamError;
pub use service::{
    ContinuousRetrainer, RetrainMode, RetrainerConfig, StepReport, TenantOutcome,
    WARM_SVD_EIS_TOLERANCE,
};
